//! Engine-throughput bench: rounds/sec for deterministic and randomized
//! rounds across path/cycle/clique at n ∈ {64, 256, 1024}, the
//! acceptance-probability comparison against the straightforward
//! per-trial-allocation baseline (the pre-refactor engine: one freshly
//! key-expanded ChaCha `StdRng` per (node, port), nested
//! `Vec<Vec<BitString>>` certificates, fresh buffers every trial), and the
//! adversary-sweep workload (64 forged labelings estimated with one shared
//! `PrepCache` vs a full preparation per labeling).
//!
//! Besides the criterion-style console report, the bench emits
//! machine-readable results to `BENCH_engine.json` at the workspace root so
//! later PRs have a perf trajectory. The `faults` workload records the
//! graceful-degradation curve — acceptance of the honest and tampered
//! 256-cycle spanning tree as drop/corrupt/crash rates grow — plus the two
//! correctness bits the gate enforces (`zero_fault_identical`,
//! `soundness_preserved`). The `service` workload pushes a mixed
//! multi-tenant batch through the resident `rpls_service::Service` and
//! records jobs/s, the shared-cache hit rate, and the
//! `verdicts_identical` bit (service replies equal direct engine
//! estimates exactly) that the gate enforces speed-independently. The
//! `service_chaos` workload drives the same service through the retrying
//! client and the seeded `ChaosProxy` byte-fault interposer twice with
//! one chaos seed, and records three more speed-independent bits the
//! gate enforces: delivered verdicts bit-identical to direct engine
//! runs, replay-identical outcome/retry/shed accounting, and a balanced
//! shed/fault ledger.
//!
//! Setting `BENCH_ENGINE_SMOKE=1` runs a reduced matrix (~15 s total):
//! the cheap acceptance runners keep their full 10k trials — their ratios
//! are what the gate checks — while the two slow ones (unprepared,
//! alloc-baseline) run a tenth and have their strictly-linear cost scaled
//! back up, and the round-matrix timing budgets shrink. The result goes to
//! `BENCH_engine_smoke.json` — the PR-time CI job runs this and feeds it
//! to the `bench_gate` binary, which fails the build if the within-run
//! throughput ratios or the tracked speedups regress more than 2× against
//! the committed `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpls_bits::BitString;
use rpls_core::engine::{self, mix_seed, MessagePattern, RunSpec, SeedSource, StreamMode};
use rpls_core::{
    CertView, CertificateBuffer, CompiledRpls, Configuration, DetView, Labeling, Pls, PrepCache,
    ProbeSketch, RandView, Received, RoundScratch, Rpls,
};
use rpls_graph::{generators, Graph, NodeId, Port};
use rpls_schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
use rpls_service::chaos::{ChaosPlan, ChaosProxy};
use rpls_service::client::{self, ClientError, RetryPolicy};
use rpls_service::registry::{self, request_skeleton};
use rpls_service::service::{Service, ServiceStats};
use rpls_service::tcp::{FrontConfig, TcpFront};
use rpls_service::wire::{JobReply, JobRequest, WireFaults};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An engine-pure randomized scheme: `bits` fresh random bits per (node,
/// port), constant-time verification. Isolates engine overhead — RNG
/// setup, certificate transport, view construction — from scheme logic.
struct RandomPayload {
    bits: usize,
}

impl Rpls for RandomPayload {
    fn name(&self) -> String {
        format!("random-payload({})", self.bits)
    }
    fn label(&self, config: &Configuration) -> Labeling {
        Labeling::empty(config.node_count())
    }
    fn certify(&self, view: &CertView<'_>, port: Port, rng: &mut dyn Rng) -> BitString {
        let mut out = BitString::with_capacity(self.bits);
        self.certify_into(view, port, rng, &mut out);
        out
    }
    fn certify_into(
        &self,
        _view: &CertView<'_>,
        _port: Port,
        rng: &mut dyn Rng,
        out: &mut BitString,
    ) {
        out.clear();
        let mut remaining = self.bits;
        while remaining > 0 {
            let width = remaining.min(64) as u32;
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            out.push_u64(rng.next_u64() & mask, width);
            remaining -= width as usize;
        }
    }
    fn verify(&self, view: &RandView<'_>) -> bool {
        view.received.iter().all(|c| c.len() == self.bits)
    }
}

/// A trivial deterministic scheme for the deterministic-round baseline:
/// empty labels, each node checks its own degree against its view.
struct DegreeCheck;

impl Pls for DegreeCheck {
    fn name(&self) -> String {
        "degree-check".into()
    }
    fn label(&self, config: &Configuration) -> Labeling {
        Labeling::empty(config.node_count())
    }
    fn verify(&self, view: &DetView<'_>) -> bool {
        view.neighbor_labels.len() == view.local.degree()
    }
}

/// One randomized round the way the pre-refactor engine ran it: a freshly
/// key-expanded `StdRng` per (node, port) and per-trial nested certificate
/// storage. This is the baseline the ≥ 5× acceptance criterion is measured
/// against.
fn baseline_round<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
) -> bool {
    let g = config.graph();
    let nested: Vec<Vec<BitString>> = g
        .nodes()
        .map(|v| {
            let view = CertView {
                local: engine::local_context(config, v),
                label: labeling.get(v),
            };
            (0..g.degree(v))
                .map(|p| {
                    let mut rng = StdRng::seed_from_u64(mix_seed(seed, v.index() as u64, p as u64));
                    scheme.certify(&view, Port::from_rank(p), &mut rng)
                })
                .collect()
        })
        .collect();
    // Fresh transport buffer per trial, as the old path materialised fresh
    // per-node delivery vectors.
    let mut buffer = CertificateBuffer::new();
    for certs in &nested {
        for c in certs {
            buffer.push(c);
        }
    }
    let delivery = config.delivery();
    let port_base = config.port_base();
    g.nodes().all(|v| {
        let lo = port_base[v.index()] as usize;
        let hi = port_base[v.index() + 1] as usize;
        let view = RandView {
            local: engine::local_context(config, v),
            label: labeling.get(v),
            received: Received::new(&buffer, &delivery[lo..hi]),
        };
        scheme.verify(&view)
    })
}

/// `acceptance_probability` as the seed implemented it: one fully
/// allocating round per trial.
fn baseline_acceptance_probability<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    trials: usize,
    seed: u64,
) -> f64 {
    let accepts = (0..trials)
        .filter(|&t| baseline_round(scheme, config, labeling, mix_seed(seed, t as u64, 0)))
        .count();
    accepts as f64 / trials as f64
}

/// Whether the reduced PR-time smoke matrix was requested.
fn smoke_mode() -> bool {
    std::env::var("BENCH_ENGINE_SMOKE").is_ok_and(|v| v == "1")
}

fn family(name: &str, n: usize) -> Graph {
    match name {
        "path" => generators::path(n),
        "cycle" => generators::cycle(n),
        "clique" => generators::complete(n),
        other => panic!("unknown family {other}"),
    }
}

/// Times `f` adaptively: enough iterations to fill ~`budget_ms`, at least
/// `min_iters`. Returns seconds per iteration.
fn time_per_iter<F: FnMut()>(mut f: F, budget_ms: u64, min_iters: usize) -> f64 {
    // Warm-up + estimate.
    let t0 = Instant::now();
    f();
    let est = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((budget_ms as f64 / 1e3 / est) as usize).clamp(min_iters, 2_000_000);
    let t1 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t1.elapsed().as_secs_f64() / iters as f64
}

struct MatrixRow {
    family: &'static str,
    n: usize,
    det_rounds_per_sec: f64,
    rand_rounds_per_sec: f64,
    baseline_rounds_per_sec: f64,
}

fn bench_round_matrix(c: &mut Criterion, rows: &mut Vec<MatrixRow>) {
    let scheme = RandomPayload { bits: 16 };
    let det = DegreeCheck;
    let mut group = c.benchmark_group("engine_rounds");
    group.sample_size(10);
    for fam in ["path", "cycle", "clique"] {
        for n in [64usize, 256, 1024] {
            let config = Configuration::plain(family(fam, n));
            let labeling = Labeling::empty(n);
            let mut scratch = RoundScratch::new();

            // The criterion console report duplicates the explicit
            // timings below; smoke mode skips it and keeps only the JSON
            // measurements the gate consumes.
            if !smoke_mode() {
                group.bench_with_input(BenchmarkId::new(format!("det/{fam}"), n), &n, |b, _| {
                    b.iter(|| black_box(engine::run_deterministic(&det, &config, &labeling)));
                });
                group.bench_with_input(BenchmarkId::new(format!("rand/{fam}"), n), &n, |b, _| {
                    b.iter(|| {
                        black_box(engine::run_randomized_with(
                            &scheme,
                            &config,
                            &labeling,
                            1,
                            StreamMode::EdgeIndependent,
                            &mut scratch,
                        ))
                    });
                });
            }

            // Explicit timings for the JSON trajectory (bigger budget on
            // the big clique so at least a few full rounds are measured;
            // smoke mode shrinks every budget to keep the PR job fast).
            let full = if fam == "clique" && n == 1024 {
                400
            } else {
                150
            };
            let budget = if smoke_mode() { full / 3 } else { full };
            let det_t = time_per_iter(
                || {
                    black_box(engine::run_deterministic(&det, &config, &labeling));
                },
                budget,
                3,
            );
            let rand_t = time_per_iter(
                || {
                    black_box(engine::run_randomized_with(
                        &scheme,
                        &config,
                        &labeling,
                        1,
                        StreamMode::EdgeIndependent,
                        &mut scratch,
                    ));
                },
                budget,
                3,
            );
            let base_t = time_per_iter(
                || {
                    black_box(baseline_round(&scheme, &config, &labeling, 1));
                },
                budget,
                3,
            );
            rows.push(MatrixRow {
                family: fam,
                n,
                det_rounds_per_sec: 1.0 / det_t,
                rand_rounds_per_sec: 1.0 / rand_t,
                baseline_rounds_per_sec: 1.0 / base_t,
            });
        }
    }
    group.finish();
}

struct AcceptanceResult {
    scheme: String,
    trials: usize,
    batched_secs: f64,
    fast_secs: f64,
    unprepared_secs: f64,
    baseline_secs: f64,
    parallel_secs: f64,
    speedup: f64,
    prepared_speedup: f64,
    batched_speedup: f64,
    parallel_speedup: f64,
    serial_estimate: f64,
    parallel_estimate: f64,
}

/// One acceptance-probability workload: the batched trial engine (what
/// `stats::acceptance_probability` runs today), the prepared scalar
/// per-round loop (PR 2's fast path, kept for the `prepared_speedup`
/// trajectory), the unprepared per-round loop, the parallel runner, and
/// the alloc-baseline — all over the same scheme and labeling.
trait Workload {
    fn batched(&self, trials: usize, seed: u64) -> f64;
    fn fast(&self, trials: usize, seed: u64) -> f64;
    fn unprepared(&self, trials: usize, seed: u64) -> f64;
    fn parallel(&self, trials: usize, seed: u64) -> f64;
    fn baseline(&self, trials: usize, seed: u64) -> f64;
}

struct SchemeWorkload<'a, S: Rpls + Sync> {
    scheme: &'a S,
    config: &'a Configuration,
    labeling: &'a Labeling,
}

impl<S: Rpls + Sync> Workload for SchemeWorkload<'_, S> {
    fn batched(&self, trials: usize, seed: u64) -> f64 {
        rpls_core::stats::acceptance_probability(
            self.scheme,
            self.config,
            self.labeling,
            trials,
            seed,
        )
    }
    /// The prepared *scalar* path: prepare once, then one
    /// `run_randomized_prepared_with` round per trial with the estimator's
    /// seed derivation. This is exactly what `acceptance_probability` ran
    /// before the batched engine, so `prepared_speedup` keeps its meaning
    /// across the JSON trajectory.
    fn fast(&self, trials: usize, seed: u64) -> f64 {
        let mut scratch = RoundScratch::new();
        let prepared = self.scheme.prepare(self.config, self.labeling, trials);
        let accepts = (0..trials)
            .filter(|&t| {
                engine::run_randomized_prepared_with(
                    &*prepared,
                    self.config,
                    rpls_core::stats::trial_seed(seed, t as u64),
                    StreamMode::EdgeIndependent,
                    &mut scratch,
                )
                .accepted
            })
            .count();
        accepts as f64 / trials as f64
    }
    /// The pre-prepared-layer estimator (the PR-1 shape): the scratch-reuse
    /// engine, but re-parsing labels and rebuilding polynomials every
    /// round. Uses the same per-trial seed derivation as
    /// `acceptance_probability`, so the estimate must come out identical.
    fn unprepared(&self, trials: usize, seed: u64) -> f64 {
        let mut scratch = RoundScratch::new();
        let accepts = (0..trials)
            .filter(|&t| {
                engine::run_randomized_with(
                    self.scheme,
                    self.config,
                    self.labeling,
                    rpls_core::stats::trial_seed(seed, t as u64),
                    StreamMode::EdgeIndependent,
                    &mut scratch,
                )
                .accepted
            })
            .count();
        accepts as f64 / trials as f64
    }
    fn parallel(&self, trials: usize, seed: u64) -> f64 {
        rpls_core::stats::acceptance_probability_par(
            self.scheme,
            self.config,
            self.labeling,
            trials,
            seed,
            None,
        )
    }
    fn baseline(&self, trials: usize, seed: u64) -> f64 {
        baseline_acceptance_probability(self.scheme, self.config, self.labeling, trials, seed)
    }
}

fn bench_acceptance_10k(results: &mut Vec<AcceptanceResult>) {
    let n = 256;
    let trials = 10_000;
    // Smoke mode keeps the full 10k trials on the cheap runners (batched,
    // prepared-scalar, parallel — their ratios are what the gate checks)
    // and runs the two slow ones (unprepared, alloc-baseline) at a tenth,
    // scaling their measured seconds back up. Both are strictly per-trial
    // linear — no preparation, nothing amortised — so the extrapolated
    // ratios stay comparable to the committed full run, which is what
    // makes a 2x gate tolerance meaningful.
    let heavy_scale = if smoke_mode() { 10 } else { 1 };
    let heavy_trials = trials / heavy_scale;
    let seed = 0xA11CE;

    // Workload 1: the engine-pure scheme — isolates the engine speedup.
    let config = Configuration::plain(generators::cycle(n));
    let labeling = Labeling::empty(n);
    let payload = RandomPayload { bits: 16 };
    // Workload 2: a real compiled scheme end to end. Under the honest
    // labeling every fingerprint probe is statically satisfied, so this
    // row measures the batched engine's best case.
    let st_config = spanning_tree_config(&config, rpls_graph::NodeId::new(0));
    let st = CompiledRpls::new(SpanningTreePls::new());
    let st_labels = Rpls::label(&st, &st_config);
    // Workload 3: the same compiled scheme with one corrupted claimed
    // replica — fractional acceptance, so the batched path runs its
    // per-trial GF(p) probe kernel instead of the static shortcut.
    let tampered_labels = {
        let mut tampered = st_labels.clone();
        let node = rpls_graph::NodeId::new(5);
        let target = tampered.get(node).len() / 2;
        let flipped: rpls_bits::BitString = tampered
            .get(node)
            .iter()
            .enumerate()
            .map(|(i, b)| if i == target { !b } else { b })
            .collect();
        tampered.set(node, flipped);
        tampered
    };

    let run = |name: &str, results: &mut Vec<AcceptanceResult>, w: &dyn Workload| {
        // Since lazy tables, the compiled batched runs complete in well
        // under a millisecond — a single sample would put the CI-gated
        // `batched_speedup` one scheduler hiccup away from a spurious 2×
        // regression, so the batched timing is a min-of-3.
        let mut batched_secs = f64::INFINITY;
        let mut serial_estimate = 0.0;
        for _ in 0..3 {
            let t0 = Instant::now();
            serial_estimate = w.batched(trials, seed);
            batched_secs = batched_secs.min(t0.elapsed().as_secs_f64());
        }

        let t1 = Instant::now();
        let prepared_estimate = w.fast(trials, seed);
        let fast_secs = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let parallel_estimate = w.parallel(trials, seed);
        let parallel_secs = t2.elapsed().as_secs_f64();

        let t3 = Instant::now();
        let unprepared_estimate = w.unprepared(heavy_trials, seed);
        let unprepared_secs = t3.elapsed().as_secs_f64() * heavy_scale as f64;

        let t4 = Instant::now();
        let _ = w.baseline(heavy_trials, seed);
        let baseline_secs = t4.elapsed().as_secs_f64() * heavy_scale as f64;

        println!(
            "bench: acceptance_cycle256/{name} ({trials} trials) ... batched \
             {batched_secs:.4}s | prepared-scalar {fast_secs:.3}s | unprepared \
             {unprepared_secs:.3}s | parallel {parallel_secs:.3}s | alloc-baseline \
             {baseline_secs:.3}s | speedup {:.2}x | prepared speedup {:.2}x | batched speedup \
             {:.2}x | parallel speedup {:.2}x",
            baseline_secs / fast_secs,
            unprepared_secs / fast_secs,
            fast_secs / batched_secs,
            baseline_secs / parallel_secs,
        );
        assert!(
            serial_estimate == parallel_estimate,
            "serial and parallel estimates must be bit-identical"
        );
        assert!(
            serial_estimate == prepared_estimate,
            "batched and prepared-scalar estimates must be bit-identical"
        );
        // The unprepared runner may have used the reduced trial count;
        // compare it against the batched engine at the same count.
        let unprepared_reference = if heavy_trials == trials {
            serial_estimate
        } else {
            w.batched(heavy_trials, seed)
        };
        assert!(
            unprepared_reference == unprepared_estimate,
            "prepared and unprepared estimates must be bit-identical"
        );
        results.push(AcceptanceResult {
            scheme: name.to_string(),
            trials,
            batched_secs,
            fast_secs,
            unprepared_secs,
            baseline_secs,
            parallel_secs,
            speedup: baseline_secs / fast_secs,
            prepared_speedup: unprepared_secs / fast_secs,
            batched_speedup: fast_secs / batched_secs,
            parallel_speedup: baseline_secs / parallel_secs,
            serial_estimate,
            parallel_estimate,
        });
    };

    run(
        "random_payload16",
        results,
        &SchemeWorkload {
            scheme: &payload,
            config: &config,
            labeling: &labeling,
        },
    );
    run(
        "compiled_spanning_tree",
        results,
        &SchemeWorkload {
            scheme: &st,
            config: &st_config,
            labeling: &st_labels,
        },
    );
    run(
        "compiled_spanning_tree_tampered",
        results,
        &SchemeWorkload {
            scheme: &st,
            config: &st_config,
            labeling: &tampered_labels,
        },
    );
}

/// The adversary-sweep workload: K forged candidate labelings (single-bit
/// mutations of the honest one, the hill-climber's move set) each
/// acceptance-estimated on the 256-cycle, once with one shared `PrepCache`
/// across the whole sweep (`sweep_secs`, what `adversary::random_forge_rpls`
/// does since the cached-prepare layer) and once with a full preparation
/// per candidate (`per_prepare_secs`, the pre-cache behaviour).
/// `prep_amortized_speedup` is their ratio; estimates must be bit-identical.
struct SweepResult {
    labelings: usize,
    trials: usize,
    sweep_secs: f64,
    per_prepare_secs: f64,
    prep_amortized_speedup: f64,
    estimates_identical: bool,
}

fn bench_adversary_sweep(results: &mut Vec<SweepResult>) {
    let n = 256usize;
    let labelings = 64usize;
    // Screening resolution: the hill-climber's cheap per-candidate filter.
    // At higher trial counts the per-trial probe kernel (identical on both
    // paths) dominates and the row would measure the kernel, not the
    // preparation amortisation it exists to gate.
    let trials = 8usize;
    let seed = 0xF0C5u64;
    let config = spanning_tree_config(
        &Configuration::plain(generators::cycle(n)),
        rpls_graph::NodeId::new(0),
    );
    let st = CompiledRpls::new(SpanningTreePls::new());
    let honest = Rpls::label(&st, &config);
    let mut rng = StdRng::seed_from_u64(7);
    let candidates: Vec<Labeling> = (0..labelings)
        .map(|_| {
            let mut lab = honest.clone();
            let v = rpls_graph::NodeId::new(rng.next_u64() as usize % n);
            let target = rng.next_u64() as usize % lab.get(v).len();
            let flipped: BitString = lab
                .get(v)
                .iter()
                .enumerate()
                .map(|(i, b)| if i == target { !b } else { b })
                .collect();
            lab.set(v, flipped);
            lab
        })
        .collect();

    let mut scratch = RoundScratch::new();

    // Both paths are timed as min-of-3 repetitions (each repetition of the
    // cached path starts from a *fresh* cache, so warm state never leaks
    // between repetitions): the whole sweep runs in tens of milliseconds,
    // and the gate compares the ratio, so jitter robustness matters more
    // than averaging.
    let reps = 3usize;
    let mut sweep_secs = f64::INFINITY;
    let mut cached_estimates = Vec::new();
    for _ in 0..reps {
        let mut cache = PrepCache::new();
        let t0 = Instant::now();
        let estimates: Vec<f64> = candidates
            .iter()
            .map(|lab| {
                rpls_core::stats::acceptance_probability_cached(
                    &st,
                    &config,
                    lab,
                    trials,
                    seed,
                    &mut scratch,
                    &mut cache,
                )
            })
            .collect();
        sweep_secs = sweep_secs.min(t0.elapsed().as_secs_f64());
        cached_estimates = estimates;
    }

    // Full preparation per candidate (a fresh throwaway cache each time).
    let mut per_prepare_secs = f64::INFINITY;
    let mut fresh_estimates = Vec::new();
    for _ in 0..reps {
        let t1 = Instant::now();
        let estimates: Vec<f64> = candidates
            .iter()
            .map(|lab| {
                rpls_core::stats::acceptance_probability_with(
                    &st,
                    &config,
                    lab,
                    trials,
                    seed,
                    &mut scratch,
                )
            })
            .collect();
        per_prepare_secs = per_prepare_secs.min(t1.elapsed().as_secs_f64());
        fresh_estimates = estimates;
    }

    let estimates_identical = cached_estimates == fresh_estimates;
    let prep_amortized_speedup = per_prepare_secs / sweep_secs;
    println!(
        "bench: adversary_sweep_cycle256 ({labelings} labelings x {trials} trials) ... shared \
         cache {sweep_secs:.4}s | per-labeling prepare {per_prepare_secs:.4}s | amortized \
         speedup {prep_amortized_speedup:.2}x | estimates identical {estimates_identical}"
    );
    assert!(
        estimates_identical,
        "cached and per-prepare sweep estimates must be bit-identical"
    );
    results.push(SweepResult {
        labelings,
        trials,
        sweep_secs,
        per_prepare_secs,
        prep_amortized_speedup,
        estimates_identical,
    });
}

/// One row of the t-round trade-off sweep: the per-round communication and
/// rejection behaviour of a scheme verified over `t` rounds. The
/// scale-free metric the gate tracks is `bits_shrink` — this workload's
/// `t = 1` per-round bits divided by this row's — which grows ≈ t for the
/// κ-bit exchange-labels baseline (proof-streaming: the label is split
/// into t chunks) and logarithmically for the compiled scheme (fingerprint
/// streaming: each round fingerprints a κ/t-bit slice).
struct TradeoffRow {
    scheme: &'static str,
    t: usize,
    trials: usize,
    max_bits_per_round: usize,
    total_bits: usize,
    bits_shrink: f64,
    secs: f64,
    honest_estimate: f64,
    tampered_estimate: f64,
    /// Mean 1-based rejection round of the tampered labeling (0 when it
    /// never rejected).
    mean_reject_round: f64,
    /// `t = 1` rows only: whether the multi-round estimates and bits were
    /// bit-identical to the batched one-round path within this run.
    t1_identical: Option<bool>,
}

fn bench_tradeoff(results: &mut Vec<TradeoffRow>) {
    let n = 256usize;
    let seed = 0x7EADu64;
    let config = spanning_tree_config(
        &Configuration::plain(generators::cycle(n)),
        rpls_graph::NodeId::new(0),
    );
    let compiled = CompiledRpls::new(SpanningTreePls::new());
    let exchange = rpls_core::scheme::ExchangeLabels::new(SpanningTreePls::new());

    let tamper = |labeling: &Labeling| -> Labeling {
        let mut out = labeling.clone();
        let node = rpls_graph::NodeId::new(5);
        let target = out.get(node).len() / 2;
        let flipped: BitString = out
            .get(node)
            .iter()
            .enumerate()
            .map(|(i, b)| if i == target { !b } else { b })
            .collect();
        out.set(node, flipped);
        out
    };

    let sweep =
        |name: &'static str, scheme: &dyn Rpls, trials: usize, results: &mut Vec<TradeoffRow>| {
            let honest = scheme.label(&config);
            let tampered = tamper(&honest);
            let mut scratch = RoundScratch::new();
            let one_round_honest =
                rpls_core::stats::acceptance_probability(scheme, &config, &honest, trials, seed);
            let one_round_tampered =
                rpls_core::stats::acceptance_probability(scheme, &config, &tampered, trials, seed);
            let one_round_bits = engine::run_randomized_with(
                scheme,
                &config,
                &honest,
                1,
                StreamMode::EdgeIndependent,
                &mut scratch,
            )
            .max_certificate_bits;

            let mut t1_bits = 0usize;
            for t in [1usize, 2, 4, 8, 16] {
                // Honest estimate timing: min-of-3, like the batched rows —
                // the compiled schedule completes in well under a millisecond.
                let mut secs = f64::INFINITY;
                let mut honest_estimate = 0.0;
                for _ in 0..3 {
                    let t0 = Instant::now();
                    honest_estimate = rpls_core::stats::multiround_acceptance_probability(
                        scheme, &config, &honest, t, trials, seed,
                    );
                    secs = secs.min(t0.elapsed().as_secs_f64());
                }
                let summary = engine::run_multiround_with(
                    scheme,
                    &config,
                    &honest,
                    seed,
                    t,
                    StreamMode::EdgeIndependent,
                    &mut scratch,
                );
                let profile = rpls_core::stats::rounds_to_reject_profile(
                    scheme, &config, &tampered, t, trials, seed,
                );
                let tampered_estimate = profile.accepts as f64 / trials as f64;
                if t == 1 {
                    t1_bits = summary.max_bits_per_round;
                }
                let t1_identical = (t == 1).then_some(
                    honest_estimate == one_round_honest
                        && tampered_estimate == one_round_tampered
                        && summary.max_bits_per_round == one_round_bits,
                );
                let row = TradeoffRow {
                    scheme: name,
                    t,
                    trials,
                    max_bits_per_round: summary.max_bits_per_round,
                    total_bits: summary.total_bits,
                    bits_shrink: t1_bits as f64 / summary.max_bits_per_round.max(1) as f64,
                    secs,
                    honest_estimate,
                    tampered_estimate,
                    mean_reject_round: profile.mean_reject_round().unwrap_or(0.0),
                    t1_identical,
                };
                println!(
                    "bench: tradeoff_cycle256/{name} t={t} ... {} bits/round (shrink {:.2}x) | \
                 honest {honest_estimate} in {secs:.4}s | tampered {tampered_estimate:.4} | mean \
                 reject round {:.2}",
                    row.max_bits_per_round, row.bits_shrink, row.mean_reject_round,
                );
                assert!(
                    honest_estimate == 1.0,
                    "{name} t={t}: honest multi-round estimate {honest_estimate} (one-sided \
                 completeness must be perfect)"
                );
                if let Some(identical) = row.t1_identical {
                    assert!(
                        identical,
                        "{name}: t = 1 must match the batched one-round path"
                    );
                }
                results.push(row);
            }
        };

    // The compiled rows run the batched chunked-fingerprint kernel (cheap
    // at any trial count); the exchange-labels baseline materialises κ-bit
    // certificates per trial, so it runs fewer — its gated metric
    // (`bits_shrink` ≈ t) is deterministic and does not depend on trials.
    sweep("compiled_spanning_tree", &compiled, 4000, results);
    sweep("exchange_spanning_tree", &exchange, 1000, results);
}

/// One row of the fault-tolerance sweep: acceptance of the honest and
/// tampered spanning-tree labeling on the 256-cycle under one fault spec,
/// estimated through the faulted batched engine. Two correctness bits are
/// gated: `zero_fault_identical` (the transparent row reproduces the
/// fault-free estimates bit for bit) and `soundness_preserved` (the
/// faulted tampered acceptance never exceeds the clean one — faults may
/// only flip accept → reject).
struct FaultRow {
    kind: &'static str,
    rate: f64,
    trials: usize,
    honest_acceptance: f64,
    tampered_acceptance: f64,
    /// Fraction of honest trials that lost at least one message.
    honest_degraded: f64,
    secs: f64,
    soundness_preserved: bool,
    /// Transparent row only: faulted estimates == clean estimates.
    zero_fault_identical: Option<bool>,
}

fn bench_faults(results: &mut Vec<FaultRow>) {
    use rpls_core::{FaultPlan, FaultSpec};
    let n = 256usize;
    let seed = 0xFA17u64;
    let fault_seed = 0x5EEDu64;
    let trials = if smoke_mode() { 2_000 } else { 10_000 };
    let config = spanning_tree_config(
        &Configuration::plain(generators::cycle(n)),
        rpls_graph::NodeId::new(0),
    );
    let scheme = CompiledRpls::new(SpanningTreePls::new());
    let honest = Rpls::label(&scheme, &config);
    let tampered = {
        let mut out = honest.clone();
        let node = rpls_graph::NodeId::new(5);
        let target = out.get(node).len() / 2;
        let flipped: BitString = out
            .get(node)
            .iter()
            .enumerate()
            .map(|(i, b)| if i == target { !b } else { b })
            .collect();
        out.set(node, flipped);
        out
    };
    let mut scratch = RoundScratch::new();
    let mut cache = PrepCache::new();
    let clean_honest = rpls_core::stats::acceptance_probability_cached(
        &scheme,
        &config,
        &honest,
        trials,
        seed,
        &mut scratch,
        &mut cache,
    );
    let clean_tampered = rpls_core::stats::acceptance_probability_cached(
        &scheme,
        &config,
        &tampered,
        trials,
        seed,
        &mut scratch,
        &mut cache,
    );

    // 512 directed ports: per-message rates are small so the per-trial
    // survival probability (1 - p)^512 spans the whole decay curve.
    let specs: &[(&str, FaultSpec)] = &[
        ("none", FaultSpec::transparent()),
        ("drop", FaultSpec::transparent().with_drop(0.001)),
        ("drop", FaultSpec::transparent().with_drop(0.005)),
        ("drop", FaultSpec::transparent().with_drop(0.02)),
        ("corrupt", FaultSpec::transparent().with_corrupt(0.001)),
        ("corrupt", FaultSpec::transparent().with_corrupt(0.005)),
        ("crash", FaultSpec::transparent().with_crash(0.001)),
        (
            "mixed",
            FaultSpec::transparent()
                .with_drop(0.002)
                .with_corrupt(0.002)
                .with_duplicate(0.002)
                .with_crash(0.0005),
        ),
    ];
    for &(kind, spec) in specs {
        let plan = FaultPlan::new(spec, fault_seed);
        let mut secs = f64::INFINITY;
        let mut fh = rpls_core::stats::FaultedAcceptance::default();
        for _ in 0..2 {
            let t0 = Instant::now();
            fh = rpls_core::stats::acceptance_under_faults_cached(
                &scheme,
                &config,
                &honest,
                trials,
                seed,
                &plan,
                &mut scratch,
                &mut cache,
            );
            secs = secs.min(t0.elapsed().as_secs_f64());
        }
        let ft = rpls_core::stats::acceptance_under_faults_cached(
            &scheme,
            &config,
            &tampered,
            trials,
            seed,
            &plan,
            &mut scratch,
            &mut cache,
        );
        let rate = spec
            .drop_rate()
            .max(spec.corrupt_rate())
            .max(spec.duplicate_rate())
            .max(spec.crash_rate());
        let row = FaultRow {
            kind,
            rate,
            trials,
            honest_acceptance: fh.acceptance(),
            tampered_acceptance: ft.acceptance(),
            honest_degraded: fh.degradation(),
            secs,
            // Exact, not statistical: the faulted and clean estimators use
            // the same per-trial seeds, and a faulted trial accepts only if
            // its clean twin does.
            soundness_preserved: ft.acceptance() <= clean_tampered,
            zero_fault_identical: spec.is_transparent().then_some(
                fh.acceptance() == clean_honest
                    && ft.acceptance() == clean_tampered
                    && fh.degraded_trials == 0
                    && ft.degraded_trials == 0,
            ),
        };
        println!(
            "bench: faults_cycle256/{kind} rate={rate} ... honest {:.4} (degraded {:.4}) | \
             tampered {:.4} | {secs:.4}s | sound {}",
            row.honest_acceptance,
            row.honest_degraded,
            row.tampered_acceptance,
            row.soundness_preserved,
        );
        assert!(
            row.soundness_preserved,
            "faults_cycle256/{kind} rate={rate}: faulted tampered acceptance \
             {} exceeds clean {clean_tampered}",
            row.tampered_acceptance,
        );
        if let Some(identical) = row.zero_fault_identical {
            assert!(
                identical,
                "faults_cycle256/{kind}: transparent plan diverged from the fault-free engine"
            );
        }
        results.push(row);
    }
}

/// One row of the message-pattern sweep: the `(messages, bits-per-round,
/// total-bits)` economics of the compiled spanning tree under one
/// [`MessagePattern`], on a sparse and a dense graph. The gate enforces
/// `per_port_identical` (the per-port pattern reproduces the pre-pattern
/// estimator and bit accounting exactly — a correctness bit, independent
/// of machine speed) and that unicast's `total_bits` never exceeds
/// per-port's on the same graph.
struct PatternRow {
    graph: &'static str,
    pattern: &'static str,
    trials: usize,
    /// Maximum distinct messages any node sends per round.
    messages: usize,
    max_bits_per_round: usize,
    total_bits: usize,
    secs: f64,
    honest_estimate: f64,
    /// Per-port rows only: estimate and bit accounting identical to the
    /// pre-pattern batched path within this run.
    per_port_identical: Option<bool>,
}

fn bench_patterns(results: &mut Vec<PatternRow>) {
    let seed = 0x9A77u64;
    let trials = if smoke_mode() { 2_000 } else { 10_000 };
    let patterns: [(&'static str, MessagePattern); 5] = [
        ("per_port", MessagePattern::PerPort),
        ("broadcast", MessagePattern::Broadcast),
        ("unicast", MessagePattern::Unicast),
        ("k2", MessagePattern::KMessages(2)),
        ("k4", MessagePattern::KMessages(4)),
    ];
    // The sparse workload (Δ = 2) and a dense one (Δ = 63), where the
    // broadcast/k-messages slot sharing actually bites.
    let workloads: [(&'static str, Configuration); 2] = [
        (
            "cycle256",
            spanning_tree_config(
                &Configuration::plain(generators::cycle(256)),
                rpls_graph::NodeId::new(0),
            ),
        ),
        (
            "clique64",
            spanning_tree_config(
                &Configuration::plain(generators::complete(64)),
                rpls_graph::NodeId::new(0),
            ),
        ),
    ];
    let scheme = CompiledRpls::new(SpanningTreePls::new());
    let mut scratch = RoundScratch::new();
    let mut cache = PrepCache::new();
    for (graph, config) in &workloads {
        let honest = Rpls::label(&scheme, config);
        // The pre-pattern reference: the legacy estimator and the legacy
        // one-round bit accounting.
        let reference =
            rpls_core::stats::acceptance_probability(&scheme, config, &honest, trials, seed);
        let reference_summary = engine::run_randomized_with(
            &scheme,
            config,
            &honest,
            1,
            StreamMode::EdgeIndependent,
            &mut scratch,
        );
        let prepared = scheme.prepare_cached(config, &honest, trials, &mut cache);
        let mut per_port_total = usize::MAX;
        for (name, pattern) in patterns {
            let cost = prepared
                .pattern_cost(pattern, 1)
                .expect("compiled schemes know their pattern economics");
            let mut secs = f64::INFINITY;
            let mut honest_estimate = 0.0;
            for _ in 0..3 {
                let t0 = Instant::now();
                honest_estimate = rpls_core::stats::acceptance_probability_patterned_cached(
                    &scheme,
                    config,
                    &honest,
                    trials,
                    seed,
                    pattern,
                    &mut scratch,
                    &mut cache,
                );
                secs = secs.min(t0.elapsed().as_secs_f64());
            }
            let per_port_identical = (pattern == MessagePattern::PerPort).then_some(
                honest_estimate == reference
                    && cost.max_bits_per_round == reference_summary.max_certificate_bits
                    && cost.total_bits == reference_summary.total_certificate_bits,
            );
            if pattern == MessagePattern::PerPort {
                per_port_total = cost.total_bits;
            }
            let row = PatternRow {
                graph,
                pattern: name,
                trials,
                messages: cost.messages,
                max_bits_per_round: cost.max_bits_per_round,
                total_bits: cost.total_bits,
                secs,
                honest_estimate,
                per_port_identical,
            };
            println!(
                "bench: patterns/{graph}/{name} ... {} msgs | {} bits/round | {} total bits | \
                 honest {honest_estimate} in {secs:.4}s",
                row.messages, row.max_bits_per_round, row.total_bits,
            );
            assert!(
                honest_estimate == 1.0,
                "patterns/{graph}/{name}: honest estimate {honest_estimate} (completeness must \
                 survive every pattern)"
            );
            if let Some(identical) = row.per_port_identical {
                assert!(
                    identical,
                    "patterns/{graph}: per-port must reproduce the pre-pattern engine"
                );
            }
            if pattern == MessagePattern::Broadcast {
                assert_eq!(
                    row.messages, 1,
                    "patterns/{graph}: broadcast must emit exactly one message per node per round"
                );
            }
            if pattern == MessagePattern::Unicast {
                assert!(
                    row.total_bits < per_port_total,
                    "patterns/{graph}: unicast total bits {} must strictly undercut per-port's \
                     {per_port_total}",
                    row.total_bits,
                );
            }
            results.push(row);
        }
    }
}

/// One row of the service workload: a mixed multi-tenant batch pushed
/// through the resident [`Service`] — three tenants with different
/// schemes, graphs, patterns, fault environments, and seed sources,
/// resubmitting so the shared `PrepCache` has recurring content to hit
/// on. The gate enforces the correctness bits (`verdicts_identical` —
/// every service reply equals a direct engine estimate run with a private
/// fresh cache, bit for bit — and a nonzero `cache_hit_rate`, both
/// deterministic functions of the batch), never the jobs/s throughput.
struct ServiceRow {
    workload: &'static str,
    jobs: usize,
    trials: usize,
    jobs_per_sec: f64,
    secs: f64,
    sheds: u64,
    cache_hit_rate: f64,
    verdicts_identical: bool,
}

/// Whether one service reply reproduces the direct estimate bit for bit.
fn reply_matches(reply: &JobReply, direct: &rpls_core::stats::Estimate) -> bool {
    let JobReply::Ok(resp) = reply else {
        return false;
    };
    resp.trials == direct.trials as u64
        && resp.accepts == direct.accepts as u64
        && resp.degraded_trials == direct.degraded_trials as u64
        && resp.missing_messages == direct.missing_messages as u64
        && resp.dropped == direct.counts.dropped as u64
        && resp.corrupted == direct.counts.corrupted as u64
        && resp.duplicated == direct.counts.duplicated as u64
        && resp.crashed_nodes == direct.counts.crashed_nodes as u64
        && resp.retries == direct.counts.retries as u64
}

fn bench_service(results: &mut Vec<ServiceRow>) {
    let (trials, repeats) = if smoke_mode() {
        (400usize, 3)
    } else {
        (4_000usize, 8)
    };

    // Tenant A: spanning tree on a 64-cycle, private coins.
    let cycle: Vec<(u32, u32)> = (0..64).map(|i| (i, (i + 1) % 64)).collect();
    let mut a = request_skeleton("spanning-tree", 64, &cycle);
    a.trials = trials as u32;
    a.seed_source = SeedSource::Trial(0xA11CE);

    // Tenant B: uniformity on a 16-path, broadcast pattern, a 2-round
    // schedule, public beacon coins.
    let path: Vec<(u32, u32)> = (0..15).map(|i| (i, i + 1)).collect();
    let mut b = request_skeleton("uniformity", 16, &path);
    b.payload = BitString::from_bools((0..96).map(|i| i % 3 == 0));
    b.trials = (trials / 2) as u32;
    b.pattern = MessagePattern::Broadcast;
    b.rounds = 2;
    b.seed_source = SeedSource::Beacon {
        round_id: 7,
        value: 0xBEAC_0000,
    };

    // Tenant C: leader election on a 12-star behind a lossy channel.
    let star: Vec<(u32, u32)> = (1..12).map(|i| (0, i)).collect();
    let mut c = request_skeleton("leader", 12, &star);
    c.param = 3;
    c.trials = (trials / 2) as u32;
    c.seed_source = SeedSource::Trial(0xC0FFEE);
    c.faults = Some(WireFaults {
        drop_rate: 0.05,
        corrupt_rate: 0.02,
        duplicate_rate: 0.0,
        crash_rate: 0.0,
        retry_budget: 0,
        fault_seed: 99,
    });

    // Ground truth first, outside the timed region: each tenant's job run
    // directly against the engine with a private fresh cache.
    let tenants = [a, b, c];
    let directs: Vec<rpls_core::stats::Estimate> = tenants
        .iter()
        .map(|req| {
            let job = registry::build(req).expect("bench tenants are well-formed");
            rpls_core::stats::estimate(
                &*job.scheme,
                &job.config,
                &job.labeling,
                &req.run_spec(),
                &rpls_core::stats::EstimateOpts::new(req.trials as usize),
            )
        })
        .collect();

    let service = Service::spawn();
    let mut replies = Vec::new();
    let t0 = Instant::now();
    for _ in 0..repeats {
        for req in &tenants {
            replies.push(service.submit(req.clone()));
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let jobs = replies.len();
    let verdicts_identical = replies
        .iter()
        .enumerate()
        .all(|(i, reply)| reply_matches(reply, &directs[i % tenants.len()]));
    let cache_hit_rate = service.cache_stats().hit_rate();
    let sheds = service.shed_count();
    service.shutdown();

    let row = ServiceRow {
        workload: "mixed_tenants",
        jobs,
        trials,
        jobs_per_sec: jobs as f64 / secs,
        secs,
        sheds,
        cache_hit_rate,
        verdicts_identical,
    };
    println!(
        "bench: service/{} ... {jobs} jobs in {secs:.4}s ({:.1} jobs/s) | hit rate {:.4} | \
         verdicts identical {verdicts_identical}",
        row.workload, row.jobs_per_sec, row.cache_hit_rate,
    );
    assert!(
        verdicts_identical,
        "service/mixed_tenants: every reply must equal the direct engine estimate"
    );
    assert!(
        cache_hit_rate > 0.0,
        "service/mixed_tenants: resubmitting tenants must hit the shared cache"
    );
    assert_eq!(
        sheds, 0,
        "service/mixed_tenants: a sequential batch must never overflow the queue"
    );
    results.push(row);
}

/// One row of the chaos workload: the full robustness stack — retrying
/// client → seeded [`ChaosProxy`] → deadline'd TCP front → supervised
/// service — driven twice with the same chaos seed. The gate enforces
/// three correctness bits, all deterministic functions of the seed and
/// never of machine speed: `verdicts_identical` (every verdict that
/// survived the chaos equals a direct engine estimate bit for bit, and
/// the deliberate crash-test job never delivers one),
/// `replay_identical` (the second run reproduces every outcome, retry
/// split, and the service's shed/fault ledger exactly), and
/// `shed_accounting_ok` (each worker panic cost exactly one restart, the
/// sequential client never pressured the queue, and the completion ledger
/// covers every delivery and fault).
struct ChaosRow {
    workload: &'static str,
    jobs: usize,
    delivered: usize,
    attempts: u32,
    transport_retries: u32,
    shed_retries: u32,
    worker_faults: u64,
    worker_restarts: u64,
    secs: f64,
    verdicts_identical: bool,
    replay_identical: bool,
    shed_accounting_ok: bool,
}

/// What one job's trip through the chaos reduced to — everything a replay
/// must reproduce: the delivered verdict triple (if any), the attempt and
/// retry accounting, and a tag naming the terminal outcome otherwise.
type ChaosOutcome = (Option<(u64, u64, u64)>, u32, u32, u32, String);

/// The chaos batch: three distinct real jobs (different schemes, graphs,
/// patterns, seed sources, one with engine-level faults under the
/// network-level chaos) plus the deliberate worker-killer that exercises
/// supervision.
fn chaos_bench_batch(trials: u32) -> Vec<JobRequest> {
    let cycle: Vec<(u32, u32)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
    let mut a = request_skeleton("spanning-tree", 8, &cycle);
    a.trials = trials;
    a.seed_source = SeedSource::Trial(0xA11CE);
    a.tenant = "a".into();

    let path: Vec<(u32, u32)> = (0..5).map(|i| (i, i + 1)).collect();
    let mut b = request_skeleton("uniformity", 6, &path);
    b.payload = BitString::from_bools((0..48).map(|i| i % 3 == 0));
    b.trials = trials / 2;
    b.pattern = MessagePattern::Broadcast;
    b.seed_source = SeedSource::Beacon {
        round_id: 7,
        value: 0xBEAC_0000,
    };
    b.tenant = "b".into();

    let mut kill = request_skeleton(registry::CRASH_TEST_SCHEME, 3, &[(0, 1), (1, 2)]);
    kill.trials = 2;
    kill.tenant = "k".into();

    let star: Vec<(u32, u32)> = (1..6).map(|i| (0, i)).collect();
    let mut c = request_skeleton("leader", 6, &star);
    c.trials = trials / 2;
    c.seed_source = SeedSource::Trial(0xC0FFEE);
    c.faults = Some(WireFaults {
        drop_rate: 0.10,
        corrupt_rate: 0.04,
        duplicate_rate: 0.0,
        crash_rate: 0.0,
        retry_budget: 1,
        fault_seed: 21,
    });
    c.tenant = "c".into();

    vec![a, b, kill, c]
}

/// One full chaos pass: fresh service, front, and seeded proxy; the batch
/// pushed through sequentially with deterministic jittered retries.
fn chaos_pass(batch: &[JobRequest], seed: u64) -> (Vec<ChaosOutcome>, ServiceStats) {
    let service = Arc::new(Service::spawn());
    let front = TcpFront::spawn_with(
        Arc::clone(&service),
        FrontConfig {
            frame_timeout: Duration::from_millis(300),
            idle_timeout: Some(Duration::from_secs(2)),
        },
    )
    .expect("bind front");
    let plan = ChaosPlan {
        seed,
        drop_rate: 0.0004,
        corrupt_rate: 0.002,
        truncate_rate: 0.001,
        split_rate: 0.02,
        delay_rate: 0.01,
        delay: Duration::from_millis(1),
    };
    let proxy = ChaosProxy::spawn(front.addr(), plan).expect("bind proxy");
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(40),
        io_timeout: Duration::from_millis(500),
        jitter_seed: seed,
    };
    let outcomes = batch
        .iter()
        .map(
            |req| match client::submit_with_retry(proxy.addr(), req, &policy) {
                Ok(o) => (
                    Some((
                        o.response.trials,
                        o.response.accepts,
                        o.response.degraded_trials,
                    )),
                    o.attempts,
                    o.transport_retries,
                    o.shed_retries,
                    String::from("ok"),
                ),
                Err(ClientError::Terminal(reason)) => (None, 0, 0, 0, format!("terminal:{reason}")),
                Err(ClientError::Exhausted { attempts, .. }) => {
                    (None, attempts, 0, 0, String::from("exhausted"))
                }
            },
        )
        .collect();
    proxy.stop();
    front.stop();
    let stats = service.stats();
    drop(service);
    (outcomes, stats)
}

fn bench_service_chaos(results: &mut Vec<ChaosRow>) {
    const CHAOS_SEED: u64 = 0xD15E_A5ED;
    let trials = if smoke_mode() { 40u32 } else { 200u32 };
    let batch = chaos_bench_batch(trials);

    // Ground truth outside the timed region: every real job run directly
    // against the engine with a private fresh cache. The crash-test job
    // has no direct verdict — its ground truth is that it never delivers.
    let directs: Vec<Option<rpls_core::stats::Estimate>> = batch
        .iter()
        .map(|req| {
            (req.scheme != registry::CRASH_TEST_SCHEME).then(|| {
                let job = registry::build(req).expect("bench chaos jobs are well-formed");
                rpls_core::stats::estimate(
                    &*job.scheme,
                    &job.config,
                    &job.labeling,
                    &req.run_spec(),
                    &rpls_core::stats::EstimateOpts::new(req.trials as usize),
                )
            })
        })
        .collect();

    let t0 = Instant::now();
    let (outcomes, stats) = chaos_pass(&batch, CHAOS_SEED);
    let secs = t0.elapsed().as_secs_f64();
    let (replay_outcomes, replay_stats) = chaos_pass(&batch, CHAOS_SEED);

    let verdicts_identical = outcomes.iter().zip(&directs).all(|(outcome, direct)| {
        match (outcome.0, direct) {
            // A delivered verdict must equal the direct engine run.
            (Some((trials, accepts, degraded)), Some(d)) => {
                trials == d.trials as u64
                    && accepts == d.accepts as u64
                    && degraded == d.degraded_trials as u64
            }
            // The crash-test job must never deliver one.
            (Some(_), None) => false,
            (None, _) => true,
        }
    });
    let replay_identical = outcomes == replay_outcomes && stats == replay_stats;
    let delivered = outcomes.iter().filter(|o| o.0.is_some()).count();
    // The ledger must balance: each panic cost exactly one restart (and
    // the crash job guarantees at least one), the one-at-a-time client
    // never pressured the queue, and `completed` covers every delivered
    // verdict (each needed at least one worker execution) plus every
    // fault.
    let shed_accounting_ok = stats.worker_faults == stats.worker_restarts
        && stats.worker_faults >= 1
        && stats.queue_sheds == 0
        && stats.evictions == 0
        && stats.deadline_sheds == 0
        && stats.completed >= delivered as u64 + stats.worker_faults;

    let row = ChaosRow {
        workload: "service_chaos",
        jobs: batch.len(),
        delivered,
        attempts: outcomes.iter().map(|o| o.1).sum(),
        transport_retries: outcomes.iter().map(|o| o.2).sum(),
        shed_retries: outcomes.iter().map(|o| o.3).sum(),
        worker_faults: stats.worker_faults,
        worker_restarts: stats.worker_restarts,
        secs,
        verdicts_identical,
        replay_identical,
        shed_accounting_ok,
    };
    println!(
        "bench: service/{} ... {} jobs ({} delivered) in {secs:.4}s | verdicts identical \
         {verdicts_identical} | replay identical {replay_identical} | accounting ok \
         {shed_accounting_ok}",
        row.workload, row.jobs, row.delivered,
    );
    assert!(
        verdicts_identical,
        "service/service_chaos: every delivered verdict must equal the direct engine estimate"
    );
    assert!(
        replay_identical,
        "service/service_chaos: the same chaos seed must reproduce the run exactly"
    );
    assert!(
        shed_accounting_ok,
        "service/service_chaos: the shed/fault ledger must balance: {stats:?}"
    );
    results.push(row);
}

/// One row of the `scale` workload: a large-graph spanning-tree
/// verification run, measured in directed-port probes per second — the
/// scale-free unit the dense-vs-sparse comparison and the thread-scaling
/// rows are stated in.
struct ScaleRow {
    workload: &'static str,
    n: usize,
    /// Directed port count (2m): the per-trial probe surface.
    ports: usize,
    trials: usize,
    secs: f64,
    ports_per_sec: f64,
    /// Sketched-clique per-port throughput over the sparse row's — the
    /// dense-family cliff, stated machine-independently.
    dense_vs_sparse_per_port: Option<f64>,
    /// Whether the dense family stays within 2× of sparse per-port
    /// throughput (the ISSUE's cliff criterion); gate-enforced.
    dense_within_2x: Option<bool>,
    /// serial secs / parallel secs at this row's worker count.
    thread_scaling: Option<f64>,
    /// Whether `estimate_par` reproduced the serial estimate bit for bit;
    /// gate-enforced.
    par_identical: Option<bool>,
}

/// Times one honest spanning-tree estimate on `graph` with the compiled
/// scheme forced dynamic (honest labelings otherwise collapse to the
/// static-pass shortcut and there is nothing to measure), optionally
/// sketched.
fn scale_run(
    workload: &'static str,
    graph: Graph,
    trials: usize,
    sketch: Option<usize>,
) -> ScaleRow {
    let n = graph.node_count();
    let ports = 2 * graph.edge_count();
    let config = spanning_tree_config(&Configuration::plain(graph), NodeId::new(0));
    let mut scheme = CompiledRpls::new(SpanningTreePls::new()).force_dynamic();
    if let Some(budget) = sketch {
        scheme = scheme.with_sketch(ProbeSketch::new(budget));
    }
    let labeling = Rpls::label(&scheme, &config);
    let spec = RunSpec::trial(0x5CA1E);
    // Warm caches and page in the plan outside the timed region.
    let _ = rpls_core::stats::estimate(
        &scheme,
        &config,
        &labeling,
        &spec,
        &rpls_core::stats::EstimateOpts::new(1),
    );
    let t0 = Instant::now();
    let est = rpls_core::stats::estimate(
        &scheme,
        &config,
        &labeling,
        &spec,
        &rpls_core::stats::EstimateOpts::new(trials),
    );
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        est.accepts, est.trials,
        "scale/{workload}: honest labeling must accept every trial"
    );
    ScaleRow {
        workload,
        n,
        ports,
        trials,
        secs,
        ports_per_sec: ports as f64 * trials as f64 / secs,
        dense_vs_sparse_per_port: None,
        dense_within_2x: None,
        thread_scaling: None,
        par_identical: None,
    }
}

/// The `scale` workload: per-port throughput of the forced-dynamic
/// compiled spanning tree on three large families — random sparse,
/// power-law, and the clique both full-probe and sketched (the
/// dense-family cliff row) — plus serial-vs-parallel thread-scaling rows
/// carrying the gate's `par_identical` bit.
fn bench_scale(results: &mut Vec<ScaleRow>) {
    // Smoke mode keeps the full dimensions: the gate compares this
    // workload's `thread_scaling` and `dense_vs_sparse_per_port` ratios
    // against the committed full run, and both are dimension-dependent
    // (thread-spawn overhead dominates tiny runs; a smaller clique
    // subsamples less), so shrinking them would fail the gate by
    // construction, not by regression. The whole workload is ~10 s.
    let (n_sparse, n_clique, trials, clique_trials) = (16_384usize, 512usize, 32usize, 4usize);

    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let sparse = scale_run(
        "sparse_random",
        generators::random_sparse(n_sparse, n_sparse / 4, &mut rng),
        trials,
        None,
    );
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let power_law = scale_run(
        "power_law",
        generators::power_law(n_sparse, 2, &mut rng),
        trials,
        None,
    );
    let clique_full = scale_run(
        "clique_full",
        generators::complete(n_clique),
        clique_trials,
        None,
    );
    let mut clique_sketched = scale_run(
        "clique_sketched",
        generators::complete(n_clique),
        clique_trials,
        Some(16),
    );
    let ratio = clique_sketched.ports_per_sec / sparse.ports_per_sec;
    clique_sketched.dense_vs_sparse_per_port = Some(ratio);
    clique_sketched.dense_within_2x = Some(ratio >= 0.5);

    // Thread scaling on the sparse workload: serial vs estimate_par at 2
    // and 4 workers. The ratio is machine-bound (a single-core runner
    // reports ~1), so the gate compares it against the committed
    // reference relatively, like every other timing; `par_identical` is a
    // correctness bit enforced on every run.
    let config = spanning_tree_config(
        &Configuration::plain({
            let mut rng = StdRng::seed_from_u64(0xBEEF);
            generators::random_sparse(n_sparse, n_sparse / 4, &mut rng)
        }),
        NodeId::new(0),
    );
    let scheme = CompiledRpls::new(SpanningTreePls::new()).force_dynamic();
    let labeling = Rpls::label(&scheme, &config);
    let spec = RunSpec::trial(0x5CA1E);
    let opts = rpls_core::stats::EstimateOpts::new(trials);
    let ports = 2 * config.graph().edge_count();
    let t0 = Instant::now();
    let serial = rpls_core::stats::estimate(&scheme, &config, &labeling, &spec, &opts);
    let serial_secs = t0.elapsed().as_secs_f64().max(1e-9);
    for (workload, workers) in [("thread_scaling_2", 2usize), ("thread_scaling_4", 4)] {
        let t0 = Instant::now();
        let par = rpls_core::stats::estimate_par(
            &scheme,
            &config,
            &labeling,
            &spec,
            &opts,
            Some(workers),
        );
        let par_secs = t0.elapsed().as_secs_f64().max(1e-9);
        results.push(ScaleRow {
            workload,
            n: n_sparse,
            ports,
            trials,
            secs: par_secs,
            ports_per_sec: ports as f64 * trials as f64 / par_secs,
            dense_vs_sparse_per_port: None,
            dense_within_2x: None,
            thread_scaling: Some(serial_secs / par_secs),
            par_identical: Some(par == serial),
        });
    }

    for row in [sparse, power_law, clique_full, clique_sketched] {
        println!(
            "bench: scale/{} ... n={} ports={} {} trials in {:.4}s | {:.0} port-probes/s{}",
            row.workload,
            row.n,
            row.ports,
            row.trials,
            row.secs,
            row.ports_per_sec,
            row.dense_vs_sparse_per_port
                .map_or(String::new(), |r| format!(" | dense/sparse {r:.2}")),
        );
        results.push(row);
    }
    for row in results.iter().filter(|r| r.thread_scaling.is_some()) {
        println!(
            "bench: scale/{} ... {:.4}s | scaling {:.2} | par identical {}",
            row.workload,
            row.secs,
            row.thread_scaling.unwrap_or(0.0),
            row.par_identical.unwrap_or(false),
        );
    }
    assert!(
        results.iter().all(|r| r.par_identical != Some(false)),
        "scale: estimate_par diverged from the serial estimate"
    );
    assert!(
        results.iter().all(|r| r.dense_within_2x != Some(false)),
        "scale: the dense family regressed more than 2x vs sparse per-port throughput"
    );
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    rows: &[MatrixRow],
    acceptance: &[AcceptanceResult],
    sweeps: &[SweepResult],
    tradeoff: &[TradeoffRow],
    faults: &[FaultRow],
    patterns: &[PatternRow],
    service: &[ServiceRow],
    chaos: &[ChaosRow],
    scale: &[ScaleRow],
) {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\n  \"bench\": \"engine\",\n  \"mode\": \"{}\",\n  \"units\": {{\"rounds_per_sec\": \
         \"1/s\", \"jobs_per_sec\": \"1/s\", \"secs\": \"s\"}},",
        if smoke_mode() { "smoke" } else { "full" }
    );
    out.push_str("  \"round_matrix\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"family\": \"{}\", \"n\": {}, \"det_rounds_per_sec\": {:.0}, \
             \"rand_rounds_per_sec\": {:.0}, \"baseline_rounds_per_sec\": {:.0}}}{}",
            r.family,
            r.n,
            r.det_rounds_per_sec,
            r.rand_rounds_per_sec,
            r.baseline_rounds_per_sec,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out.push_str("  ],\n  \"acceptance_probability_cycle256\": [\n");
    for (i, a) in acceptance.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"scheme\": \"{}\", \"trials\": {}, \"batched_secs\": {:.4}, \
             \"fast_secs\": {:.4}, \"unprepared_secs\": {:.4}, \"baseline_secs\": {:.4}, \
             \"parallel_secs\": {:.4}, \"speedup\": {:.2}, \"prepared_speedup\": {:.2}, \
             \"batched_speedup\": {:.2}, \"parallel_speedup\": {:.2}, \
             \"serial_estimate\": {}, \"parallel_estimate\": {}, \"estimates_identical\": {}}}{}",
            a.scheme,
            a.trials,
            a.batched_secs,
            a.fast_secs,
            a.unprepared_secs,
            a.baseline_secs,
            a.parallel_secs,
            a.speedup,
            a.prepared_speedup,
            a.batched_speedup,
            a.parallel_speedup,
            a.serial_estimate,
            a.parallel_estimate,
            a.serial_estimate == a.parallel_estimate,
            if i + 1 == acceptance.len() && sweeps.is_empty() {
                ""
            } else {
                ","
            }
        );
    }
    // The adversary-sweep rows live in the same flat array (same parser,
    // same per-scheme matching in the gate); their scale-free metric is
    // `prep_amortized_speedup`, and `estimates_identical` records that the
    // shared-cache sweep reproduced the per-prepare estimates bit for bit.
    for (i, s) in sweeps.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"scheme\": \"adversary_sweep{}\", \"trials\": {}, \"labelings\": {}, \
             \"sweep_secs\": {:.4}, \"per_prepare_secs\": {:.4}, \
             \"prep_amortized_speedup\": {:.2}, \"estimates_identical\": {}}}{}",
            s.labelings,
            s.trials,
            s.labelings,
            s.sweep_secs,
            s.per_prepare_secs,
            s.prep_amortized_speedup,
            s.estimates_identical,
            if i + 1 == sweeps.len() { "" } else { "," }
        );
    }
    // The t-round trade-off sweep: per-(scheme, t) rows whose scale-free
    // metric is `bits_shrink` (t = 1 per-round bits over this t's); the
    // t = 1 rows additionally carry the within-run `t1_identical`
    // correctness bit the gate enforces.
    out.push_str("  ],\n  \"tradeoff\": [\n");
    for (i, r) in tradeoff.iter().enumerate() {
        let t1_field = r
            .t1_identical
            .map_or(String::new(), |b| format!(", \"t1_identical\": {b}"));
        let _ = writeln!(
            out,
            "    {{\"scheme\": \"{}\", \"t\": {}, \"trials\": {}, \"max_bits_per_round\": {}, \
             \"total_bits\": {}, \"bits_shrink\": {:.2}, \"secs\": {:.4}, \
             \"honest_estimate\": {}, \"tampered_estimate\": {:.4}, \
             \"mean_reject_round\": {:.2}{}}}{}",
            r.scheme,
            r.t,
            r.trials,
            r.max_bits_per_round,
            r.total_bits,
            r.bits_shrink,
            r.secs,
            r.honest_estimate,
            r.tampered_estimate,
            r.mean_reject_round,
            t1_field,
            if i + 1 == tradeoff.len() { "" } else { "," }
        );
    }
    // The fault-tolerance sweep: acceptance decay of the 256-cycle
    // spanning tree as channels get lossier. The gate enforces the two
    // correctness bits (`zero_fault_identical`, `soundness_preserved`) on
    // every current run; the acceptance values themselves are
    // deterministic functions of the seeds, recorded for the trajectory.
    out.push_str("  ],\n  \"faults\": [\n");
    for (i, r) in faults.iter().enumerate() {
        let zero_field = r.zero_fault_identical.map_or(String::new(), |b| {
            format!(", \"zero_fault_identical\": {b}")
        });
        let _ = writeln!(
            out,
            "    {{\"kind\": \"{}\", \"rate\": {}, \"trials\": {}, \
             \"honest_acceptance\": {:.4}, \"tampered_acceptance\": {:.4}, \
             \"honest_degraded\": {:.4}, \"secs\": {:.4}, \
             \"soundness_preserved\": {}{}}}{}",
            r.kind,
            r.rate,
            r.trials,
            r.honest_acceptance,
            r.tampered_acceptance,
            r.honest_degraded,
            r.secs,
            r.soundness_preserved,
            zero_field,
            if i + 1 == faults.len() { "" } else { "," }
        );
    }
    // The message-pattern sweep: resource triples of the compiled spanning
    // tree across the broadcast/unicast/k-messages spectrum. The gate
    // enforces `per_port_identical` and the unicast ≤ per-port total-bits
    // ordering on every current run; the triples themselves are
    // labeling-static and recorded for the trajectory.
    out.push_str("  ],\n  \"patterns\": [\n");
    for (i, r) in patterns.iter().enumerate() {
        let identical_field = r
            .per_port_identical
            .map_or(String::new(), |b| format!(", \"per_port_identical\": {b}"));
        let _ = writeln!(
            out,
            "    {{\"graph\": \"{}\", \"pattern\": \"{}\", \"trials\": {}, \"messages\": {}, \
             \"max_bits_per_round\": {}, \"total_bits\": {}, \"secs\": {:.4}, \
             \"honest_estimate\": {}{}}}{}",
            r.graph,
            r.pattern,
            r.trials,
            r.messages,
            r.max_bits_per_round,
            r.total_bits,
            r.secs,
            r.honest_estimate,
            identical_field,
            if i + 1 == patterns.len() { "" } else { "," }
        );
    }
    // The service workload: a mixed multi-tenant batch through the
    // resident engine. The gate enforces `verdicts_identical` and a
    // nonzero `cache_hit_rate` on every current run (both deterministic
    // functions of the batch); `jobs_per_sec` is recorded for the
    // trajectory but never compared — absolute throughput is
    // machine-bound.
    out.push_str("  ],\n  \"service\": [\n");
    for (i, r) in service.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"jobs\": {}, \"trials\": {}, \
             \"jobs_per_sec\": {:.1}, \"secs\": {:.4}, \"sheds\": {}, \
             \"cache_hit_rate\": {:.4}, \"verdicts_identical\": {}}}{}",
            r.workload,
            r.jobs,
            r.trials,
            r.jobs_per_sec,
            r.secs,
            r.sheds,
            r.cache_hit_rate,
            r.verdicts_identical,
            if i + 1 == service.len() && chaos.is_empty() {
                ""
            } else {
                ","
            }
        );
    }
    // The chaos rows live in the same flat array (same parser, same
    // per-workload matching in the gate). All three of their bits are
    // speed-independent correctness gates; the retry/fault counters are
    // recorded for the trajectory and replay-deterministic per seed.
    for (i, r) in chaos.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"jobs\": {}, \"delivered\": {}, \"attempts\": {}, \
             \"transport_retries\": {}, \"shed_retries\": {}, \"worker_faults\": {}, \
             \"worker_restarts\": {}, \"secs\": {:.4}, \"verdicts_identical\": {}, \
             \"replay_identical\": {}, \"shed_accounting_ok\": {}}}{}",
            r.workload,
            r.jobs,
            r.delivered,
            r.attempts,
            r.transport_retries,
            r.shed_retries,
            r.worker_faults,
            r.worker_restarts,
            r.secs,
            r.verdicts_identical,
            r.replay_identical,
            r.shed_accounting_ok,
            if i + 1 == chaos.len() { "" } else { "," }
        );
    }
    // The scale workload: per-port throughput of the large-graph families.
    // The gate enforces `par_identical` and `dense_within_2x` on every
    // current run, and compares `thread_scaling` and
    // `dense_vs_sparse_per_port` relatively against the reference (both
    // are within-run ratios, so runner speed cancels); `ports_per_sec` is
    // recorded for the trajectory but never compared.
    out.push_str("  ],\n  \"scale\": [\n");
    for (i, r) in scale.iter().enumerate() {
        let dense_fields = match (r.dense_vs_sparse_per_port, r.dense_within_2x) {
            (Some(ratio), Some(ok)) => {
                format!(", \"dense_vs_sparse_per_port\": {ratio:.4}, \"dense_within_2x\": {ok}")
            }
            _ => String::new(),
        };
        let thread_fields = match (r.thread_scaling, r.par_identical) {
            (Some(scaling), Some(identical)) => {
                format!(", \"thread_scaling\": {scaling:.4}, \"par_identical\": {identical}")
            }
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"n\": {}, \"ports\": {}, \"trials\": {}, \
             \"secs\": {:.4}, \"ports_per_sec\": {:.0}{}{}}}{}",
            r.workload,
            r.n,
            r.ports,
            r.trials,
            r.secs,
            r.ports_per_sec,
            dense_fields,
            thread_fields,
            if i + 1 == scale.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");

    let file = if smoke_mode() {
        "BENCH_engine_smoke.json"
    } else {
        "BENCH_engine.json"
    };
    let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, out).expect("write bench JSON");
    println!("bench: wrote {path}");
}

fn bench_engine(c: &mut Criterion) {
    let mut rows = Vec::new();
    let mut acceptance = Vec::new();
    let mut sweeps = Vec::new();
    let mut tradeoff = Vec::new();
    let mut faults = Vec::new();
    let mut patterns = Vec::new();
    let mut service = Vec::new();
    let mut chaos = Vec::new();
    let mut scale = Vec::new();
    bench_round_matrix(c, &mut rows);
    bench_acceptance_10k(&mut acceptance);
    bench_adversary_sweep(&mut sweeps);
    bench_tradeoff(&mut tradeoff);
    bench_faults(&mut faults);
    bench_patterns(&mut patterns);
    bench_service(&mut service);
    bench_service_chaos(&mut chaos);
    bench_scale(&mut scale);
    write_json(
        &rows,
        &acceptance,
        &sweeps,
        &tradeoff,
        &faults,
        &patterns,
        &service,
        &chaos,
        &scale,
    );
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
