//! E-B timing: boosted verification rounds (footnote 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpls_bits::BitString;
use rpls_core::{stats, CompiledRpls, Configuration, Rpls};
use rpls_graph::generators;
use rpls_schemes::uniformity::{uniform_config, UniformityPls};
use std::hint::black_box;

fn bench_boosting(c: &mut Criterion) {
    let mut group = c.benchmark_group("boosting");
    group.sample_size(10);
    let base = Configuration::plain(generators::cycle(8));
    let payload = BitString::from_bools((0..512).map(|i| i % 5 == 0));
    let config = uniform_config(&base, &payload);
    let scheme = CompiledRpls::new(UniformityPls);
    let labeling = scheme.label(&config);
    for reps in [1usize, 7, 31] {
        group.bench_with_input(BenchmarkId::new("boosted_verify", reps), &reps, |b, &r| {
            b.iter(|| {
                black_box(stats::boosted_accepts(
                    &scheme,
                    black_box(&config),
                    &labeling,
                    r,
                    9,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_boosting);
criterion_main!(benches);
