//! E-F timing: the k-flow scheme — flow decomposition in the prover and
//! conservation checking in the verifier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpls_core::{engine, CompiledRpls, Configuration, Pls, Rpls};
use rpls_graph::generators;
use rpls_schemes::flow::{FlowPls, FlowPredicate};
use std::hint::black_box;

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow");
    group.sample_size(20);
    for k in [4usize, 16] {
        let config = Configuration::plain(generators::complete(k + 1));
        let scheme = FlowPls::new(FlowPredicate::new(0, k as u64, k));
        group.bench_with_input(BenchmarkId::new("prover", k), &k, |b, _| {
            b.iter(|| black_box(scheme.label(black_box(&config))));
        });
        let labeling = scheme.label(&config);
        group.bench_with_input(BenchmarkId::new("det_round", k), &k, |b, _| {
            b.iter(|| black_box(engine::run_deterministic(&scheme, &config, &labeling)));
        });
        let compiled = CompiledRpls::new(FlowPls::new(FlowPredicate::new(0, k as u64, k)));
        let clabels = compiled.label(&config);
        group.bench_with_input(BenchmarkId::new("compiled_round", k), &k, |b, _| {
            b.iter(|| black_box(engine::run_randomized(&compiled, &config, &clabels, 2)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
