//! E-5.1 timing: MST proof labeling — prover (Borůvka hierarchy), one
//! deterministic round, one compiled randomized round — plus the label
//! layout ablation called out in DESIGN.md (hierarchy labels vs shipping
//! the whole tree in every label, which is what the universal scheme does).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls_core::scheme::FnPredicate;
use rpls_core::universal::UniversalPls;
use rpls_core::{engine, CompiledRpls, Configuration, Pls, Predicate, Rpls};
use rpls_graph::generators;
use rpls_schemes::mst::{mst_config, MstPls, MstPredicate};
use std::hint::black_box;

fn workload(n: usize, seed: u64) -> Configuration {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::gnp_connected(n, (4.0 / n as f64).min(0.5), &mut rng);
    let w = generators::random_weights(&g, (n * n) as u64, &mut rng);
    mst_config(&Configuration::plain(g.with_weights(&w)))
}

fn bench_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst");
    group.sample_size(10);
    for n in [32usize, 128] {
        let config = workload(n, 5);
        group.bench_with_input(BenchmarkId::new("prover", n), &n, |b, _| {
            b.iter(|| black_box(MstPls.label(black_box(&config))));
        });
        let labeling = MstPls.label(&config);
        group.bench_with_input(BenchmarkId::new("det_round", n), &n, |b, _| {
            b.iter(|| black_box(engine::run_deterministic(&MstPls, &config, &labeling)));
        });
        let compiled = CompiledRpls::new(MstPls);
        let clabels = compiled.label(&config);
        group.bench_with_input(BenchmarkId::new("compiled_round", n), &n, |b, _| {
            b.iter(|| black_box(engine::run_randomized(&compiled, &config, &clabels, 1)));
        });
    }
    // Ablation: hierarchy labels vs whole-configuration labels.
    {
        let config = workload(32, 5);
        let hierarchy_bits = MstPls.label(&config).max_bits();
        let universal = UniversalPls::new(FnPredicate::new("mst", {
            move |c: &Configuration| MstPredicate::new().holds(c)
        }));
        let universal_bits = universal.label(&config).max_bits();
        eprintln!(
            "[ablation] n=32 MST labels: hierarchy {hierarchy_bits} bits vs whole-config {universal_bits} bits"
        );
        group.bench_function("universal_mst_prover_n32", |b| {
            b.iter(|| black_box(universal.label(black_box(&config))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mst);
criterion_main!(benches);
