//! E-5.3 – E-5.6 timing: cycle-length schemes and their crossings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpls_bits::BitString;
use rpls_core::{engine, Configuration, Labeling, Pls};
use rpls_crossing::det_attack::det_crossing_attack;
use rpls_crossing::families;
use rpls_crossing::iterated::iterated_crossing;
use rpls_graph::{generators, NodeId};
use rpls_schemes::cycle_at_least::CycleAtLeastPls;
use std::hint::black_box;

fn bench_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycles");
    group.sample_size(10);
    // Prover includes an exact longest-cycle search; keep sizes moderate.
    for n in [12usize, 24] {
        let config = Configuration::plain(generators::cycle(n));
        let scheme = CycleAtLeastPls::new(n);
        group.bench_with_input(BenchmarkId::new("prover_cycle", n), &n, |b, _| {
            b.iter(|| black_box(scheme.label(black_box(&config))));
        });
        let labeling = scheme.label(&config);
        group.bench_with_input(BenchmarkId::new("det_round", n), &n, |b, _| {
            b.iter(|| black_box(engine::run_deterministic(&scheme, &config, &labeling)));
        });
    }
    // Theorem 5.4 and 5.6 attacks.
    {
        let f = families::wheel_cycle(24, 18);
        let cheap = Labeling::new(vec![BitString::zeros(1); 24]);
        group.bench_function("wheel_cycle_attack", |b| {
            b.iter(|| black_box(det_crossing_attack(&f, &cheap)));
        });
    }
    {
        let f = families::chain_of_cycles(6, 6);
        let cheap = Labeling::new(vec![BitString::zeros(1); 36]);
        group.bench_function("chain_attack", |b| {
            b.iter(|| black_box(det_crossing_attack(&f, &cheap)));
        });
    }
    // Theorem 5.5 iterated crossing.
    {
        let n = 24;
        let config = Configuration::plain(generators::wheel(n));
        let labeling = Labeling::new(vec![BitString::zeros(1); n]);
        let edges: Vec<(NodeId, NodeId)> = (1..=(n / 3 - 1))
            .map(|i| (NodeId::new(3 * i), NodeId::new(3 * i + 1)))
            .collect();
        group.bench_function("iterated_crossing", |b| {
            b.iter(|| black_box(iterated_crossing(&config, &labeling, &edges, n / 3)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycles);
criterion_main!(benches);
