//! E-4.3 / E-4.8 timing: the crossing operator, the pigeonhole search and
//! the support-collision search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpls_core::{CompiledRpls, Pls, Rpls};
use rpls_crossing::det_attack::det_crossing_attack;
use rpls_crossing::onesided_attack::find_support_collision;
use rpls_crossing::{families, ModDistancePls};
use rpls_graph::crossing::cross_copies;
use std::hint::black_box;

fn bench_crossing(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossing");
    group.sample_size(10);
    for n in [60usize, 300] {
        let f = families::acyclicity_path(n);
        group.bench_with_input(BenchmarkId::new("cross_op", n), &n, |b, _| {
            b.iter(|| black_box(cross_copies(f.config.graph(), &f.copies, 0, 1).unwrap()));
        });
        let scheme = ModDistancePls::new(2);
        let labeling = scheme.label(&f.config);
        group.bench_with_input(BenchmarkId::new("det_attack", n), &n, |b, _| {
            b.iter(|| black_box(det_crossing_attack(&f, &labeling)));
        });
    }
    {
        let f = families::acyclicity_path(39);
        let scheme = CompiledRpls::new(ModDistancePls::new(1));
        let labeling = scheme.label(&f.config);
        group.bench_function("support_collision_search", |b| {
            b.iter(|| black_box(find_support_collision(&scheme, &f, &labeling, 200, 3)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crossing);
criterion_main!(benches);
