//! A vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! The workspace's benches use benchmark groups, `bench_function` /
//! `bench_with_input`, `sample_size` and the `criterion_group!` /
//! `criterion_main!` macros. This shim implements that surface with a
//! simple adaptive timer: each benchmark is warmed up, batched so one
//! sample takes a measurable amount of wall time, and reported as the
//! median per-iteration time over `sample_size` samples.
//!
//! Results are printed in a stable, greppable one-line format:
//!
//! ```text
//! bench: <group>/<name> ... median <t> ns/iter (<samples> samples)
//! ```
//!
//! There is no statistical comparison against saved baselines; benches in
//! this workspace that need machine-readable output write their own JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark context, one per binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_millis(300),
        }
    }
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id consisting of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Benchmarks a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group. (Reporting happens per benchmark; this exists for
    /// API compatibility.)
    pub fn finish(self) {}
}

/// Times a single benchmark body.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    median_ns: Option<f64>,
    samples: usize,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Self {
            sample_size,
            measurement_time,
            median_ns: None,
            samples: 0,
        }
    }

    /// Runs the routine repeatedly and records its median time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a single-iteration time.
        let start = Instant::now();
        black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(1));

        // Batch so one sample takes a measurable slice of the budget.
        let per_sample = self.measurement_time / (self.sample_size as u32);
        let batch = (per_sample.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        self.samples = samples_ns.len();
        self.median_ns = Some(samples_ns[samples_ns.len() / 2]);
    }

    fn report(&self, group: &str, name: &str) {
        match self.median_ns {
            Some(ns) => println!(
                "bench: {group}/{name} ... median {ns:.0} ns/iter ({} samples)",
                self.samples
            ),
            None => println!("bench: {group}/{name} ... no measurement recorded"),
        }
    }
}

/// Declares a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(10));
        group.bench_function("count", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }

    #[test]
    fn ids_format_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
