//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard generator: ChaCha with 12 rounds, the same
/// algorithm family upstream `rand` uses for its `StdRng`.
///
/// Seeding from a `u64` expands the seed through SplitMix64 into the 256-bit
/// ChaCha key, so nearby seeds produce unrelated streams. The stream is
/// deterministic given the seed and stable within this workspace.
#[derive(Debug, Clone)]
pub struct StdRng {
    /// ChaCha state: 4 constant words, 8 key words, 2 counter words,
    /// 2 nonce words.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const CHACHA_ROUNDS: usize = 12;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// One SplitMix64 step — the standard seed-expansion mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Builds a generator from a full 256-bit key.
    #[must_use]
    pub fn from_key(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        Self {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl Rng for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        Self::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_change_between_refills() {
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(42);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // Expect ~32_000 set bits out of 64_000.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(100);
        let mut b = StdRng::seed_from_u64(101);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
