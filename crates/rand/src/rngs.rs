//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard generator: ChaCha with 12 rounds, the same
/// algorithm family upstream `rand` uses for its `StdRng`.
///
/// Seeding from a `u64` expands the seed through SplitMix64 into the 256-bit
/// ChaCha key, so nearby seeds produce unrelated streams. The stream is
/// deterministic given the seed and stable within this workspace.
#[derive(Debug, Clone)]
pub struct StdRng {
    /// ChaCha state: 4 constant words, 8 key words, 2 counter words,
    /// 2 nonce words.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const CHACHA_ROUNDS: usize = 12;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// One SplitMix64 step — the standard seed-expansion mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Builds a generator from a full 256-bit key.
    #[must_use]
    pub fn from_key(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        Self {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl Rng for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        Self::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_change_between_refills() {
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(42);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // Expect ~32_000 set bits out of 64_000.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(100);
        let mut b = StdRng::seed_from_u64(101);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    /// Upstream `rand_core::SeedableRng::seed_from_u64` expands the seed
    /// with a PCG32 step per 4-byte key chunk, NOT SplitMix64 — so this
    /// shim's `StdRng` is intentionally **stream-incompatible** with
    /// upstream `rand::rngs::StdRng` for the same `u64` seed, even though
    /// both are ChaCha12. Every golden digest in the workspace is keyed to
    /// the shim's streams; this test makes a future "just swap in the real
    /// `rand` crate" fail loudly here instead of silently shifting every
    /// pinned transcript.
    #[test]
    fn seed_expansion_is_not_upstream_rand_compatible() {
        // rand_core's seed_from_u64 key fill, transcribed: PCG32 with the
        // seed as the initial state increment.
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let seed = 7u64;
        let mut state = seed.wrapping_add(INC);
        let mut upstream_key = [0u8; 32];
        for chunk in upstream_key.chunks_exact_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }

        // Same ChaCha12 core, upstream's key schedule: the streams must
        // differ from the shim's for the same u64 seed.
        let mut upstream_style = StdRng::from_key(upstream_key);
        let mut shim = StdRng::seed_from_u64(seed);
        let diverged = (0..16).any(|_| upstream_style.next_u64() != shim.next_u64());
        assert!(
            diverged,
            "shim seed_from_u64 now matches upstream rand's key schedule; \
             re-pin every golden transcript before accepting this"
        );

        // And the shim's own expansion stays pinned to SplitMix64.
        let mut sm = seed;
        let mut expect = [0u8; 32];
        for chunk in expect.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        let mut pinned = StdRng::from_key(expect);
        let mut again = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            assert_eq!(pinned.next_u64(), again.next_u64());
        }
    }
}
