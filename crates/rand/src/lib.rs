//! A vendored, dependency-free subset of the `rand` crate API.
//!
//! This workspace builds in fully offline environments, so the handful of
//! `rand` items the schemes and tests rely on are implemented here:
//!
//! * [`Rng`] — the core trait (`next_u32` / `next_u64` / `fill_bytes`),
//!   object-safe so verifier plumbing can pass `&mut dyn Rng`;
//! * [`RngExt`] — ergonomic extension methods ([`RngExt::random_range`],
//!   [`RngExt::random_bool`]), blanket-implemented for every [`Rng`];
//! * [`SeedableRng`] — deterministic construction from a `u64` seed;
//! * [`rngs::StdRng`] — a ChaCha12-based generator mirroring the upstream
//!   `StdRng` (statistically strong, deliberately *not* stream-compatible
//!   with any particular upstream release, exactly like upstream's own
//!   cross-version policy).
//!
//! Everything is deterministic and seedable: there is no OS entropy source
//! here on purpose — reproducibility is a correctness requirement for the
//! proof-labeling experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

use core::ops::{Range, RangeInclusive};

/// A source of random bits. Object-safe: engine plumbing passes
/// `&mut dyn Rng` so scheme implementations do not depend on a concrete
/// generator type.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A range that can be sampled uniformly. Implemented for half-open and
/// inclusive ranges over the unsigned integer types the workspace uses
/// (`u8`, `u16`, `u32`, `u64`, `usize`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, width)` by rejection sampling (exact, no modulo
/// bias). `width == 0` encodes the full 64-bit range.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, width: u64) -> u64 {
    if width == 0 {
        return rng.next_u64();
    }
    // Largest multiple of `width` that fits in u64; values at or above it
    // would bias the low residues.
    let zone = u64::MAX - (u64::MAX - width + 1) % width;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % width;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                // Width 0 after wrapping means the full domain.
                let width = (end as u64)
                    .wrapping_sub(start as u64)
                    .wrapping_add(1);
                start.wrapping_add(uniform_below(rng, width) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience methods on any [`Rng`], mirroring the upstream `Rng`
/// extension surface this workspace uses.
pub trait RngExt: Rng {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // 53 uniform mantissa bits, the standard double-precision trick.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.random_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn random_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynr: &mut dyn Rng = &mut rng;
        let a = dynr.next_u64();
        let b = dynr.random_range(0u64..100);
        assert!(b < 100);
        let _ = a;
    }

    #[test]
    fn inclusive_full_domain_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(6);
        let _: u64 = rng.random_range(0..=u64::MAX);
        let x: u8 = rng.random_range(0..=u8::MAX);
        let _ = x;
    }
}
