//! Lower-bound machinery: the crossing arguments of §4 of *Randomized
//! Proof-Labeling Schemes*, executable.
//!
//! The paper's space lower bounds all follow one recipe: exhibit `r`
//! pairwise independent isomorphic subgraphs in a legal configuration, show
//! by pigeonhole that a scheme with too few bits must treat two of them
//! identically, and *cross* those two (Definition 4.2) — producing an
//! illegal configuration every node sees exactly the same way. This crate
//! turns each step into code:
//!
//! * [`families`] — the concrete instances of §5: the acyclicity path
//!   (Thm 5.1), the wheel (Thm 5.2 / Fig. 2), the restricted wheel
//!   (Thm 5.4), the chain of cycles (Thm 5.6 / Fig. 5);
//! * [`det_attack`] — Proposition 4.3: find a label-colliding pair, cross,
//!   and *prove* the fooling by checking that every node's local view is
//!   bit-identical in the two configurations (hence **any** deterministic
//!   verifier gives the same verdict);
//! * [`onesided_attack`] — Proposition 4.8: the same pigeonhole on
//!   certificate *supports*, fooling any one-sided randomized scheme;
//! * [`rounded`] — Proposition 4.6: ε-rounded certificate distributions
//!   and the acceptance-probability transfer for two-sided
//!   edge-independent schemes;
//! * [`iterated`] — Theorem 5.5: applying the crossing repeatedly until
//!   every long cycle is destroyed;
//! * [`mod_distance`] — a tunable `B`-bit acyclicity scheme (distances
//!   modulo `2^B`) that is complete at every budget and sound exactly when
//!   `B` clears the pigeonhole threshold — the demonstration vehicle for
//!   watching the fooling kick in below the bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod det_attack;
pub mod families;
pub mod iterated;
pub mod mod_distance;
pub mod onesided_attack;
pub mod rounded;

pub use det_attack::{det_crossing_attack, DetAttackReport};
pub use families::Family;
pub use mod_distance::ModDistancePls;
