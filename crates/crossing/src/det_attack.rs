//! Proposition 4.3 executed: the deterministic pigeonhole crossing attack.
//!
//! Given a labeling of the host configuration and a family of independent
//! copies, the attack (1) finds two copies whose concatenated labels are
//! identical (guaranteed by pigeonhole once labels are shorter than
//! `log₂(r) / 2s` bits), (2) crosses them, and (3) *verifies the fooling
//! semantically*: every node's deterministic view — own state, own label,
//! neighbor labels in port order — is bit-identical in the original and the
//! crossed configuration. Identical views mean **every** deterministic
//! verifier, known or unknown, returns the same vote at every node; if the
//! predicate flipped, the scheme is broken.

use rpls_bits::BitString;
use rpls_core::{Configuration, Labeling};
use rpls_graph::crossing::cross_copies;

use crate::families::Family;

/// Concatenates the labels of copy `i`'s nodes in the shared order induced
/// by the isomorphisms — the string `L_i` of the Proposition 4.3 proof.
#[must_use]
pub fn copy_label_string(labeling: &Labeling, family: &Family, i: usize) -> BitString {
    let nodes = family.copies.ordered_nodes(i);
    BitString::concat(nodes.iter().map(|v| labeling.get(*v)).collect::<Vec<_>>())
}

/// Finds the first pair of copies with identical label strings.
#[must_use]
pub fn find_label_collision(labeling: &Labeling, family: &Family) -> Option<(usize, usize)> {
    let r = family.copy_count();
    let mut seen: std::collections::HashMap<BitString, usize> = std::collections::HashMap::new();
    for i in 0..r {
        let key = copy_label_string(labeling, family, i);
        if let Some(&j) = seen.get(&key) {
            return Some((j, i));
        }
        seen.insert(key, i);
    }
    None
}

/// Checks that every node's deterministic view is identical in the two
/// configurations (same graph node set, same states, same labels, and same
/// neighbor labels *per port*). This is the exact property the
/// Proposition 4.3 proof establishes for a crossing of label-identical
/// copies.
#[must_use]
pub fn views_identical(
    original: &Configuration,
    crossed: &Configuration,
    labeling: &Labeling,
) -> bool {
    let (g, h) = (original.graph(), crossed.graph());
    if g.node_count() != h.node_count() {
        return false;
    }
    g.nodes().all(|v| {
        if g.degree(v) != h.degree(v) {
            return false;
        }
        (0..g.degree(v)).all(|p| {
            let port = rpls_graph::Port::from_rank(p);
            let a = g.neighbor_by_port(v, port).expect("port in range");
            let b = h.neighbor_by_port(v, port).expect("port in range");
            labeling.get(a.node) == labeling.get(b.node) && a.weight == b.weight
        })
    })
}

/// The outcome of a deterministic crossing attack.
#[derive(Debug, Clone)]
pub struct DetAttackReport {
    /// The colliding pair of copy indices, if one exists.
    pub collision: Option<(usize, usize)>,
    /// The crossed configuration (if a collision was found).
    pub crossed: Option<Configuration>,
    /// Whether every node's view survived the crossing unchanged — the
    /// "fooled" verdict.
    pub views_preserved: bool,
    /// Maximum label bits of the attacked labeling.
    pub label_bits: usize,
    /// The pigeonhole threshold `log₂(r) / 2s` for this family.
    pub threshold_bits: f64,
}

impl DetAttackReport {
    /// Whether the attack went through: a collision existed and the views
    /// were preserved across the crossing.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.collision.is_some() && self.views_preserved
    }
}

/// Runs the full Proposition 4.3 attack against a labeling (e.g. the honest
/// labels of a scheme under a bit budget).
#[must_use]
pub fn det_crossing_attack(family: &Family, labeling: &Labeling) -> DetAttackReport {
    let threshold_bits = family.det_threshold_bits();
    let label_bits = labeling.max_bits();
    let Some((i, j)) = find_label_collision(labeling, family) else {
        return DetAttackReport {
            collision: None,
            crossed: None,
            views_preserved: false,
            label_bits,
            threshold_bits,
        };
    };
    let crossed_graph = cross_copies(family.config.graph(), &family.copies, i, j)
        .expect("family copies are crossable");
    let crossed = family.config.with_graph(crossed_graph);
    let views_preserved = views_identical(&family.config, &crossed, labeling);
    DetAttackReport {
        collision: Some((i, j)),
        crossed: Some(crossed),
        views_preserved,
        label_bits,
        threshold_bits,
    }
}

/// Convenience for experiments: attack the truncation of a labeling to
/// `bits` bits per label.
#[must_use]
pub fn det_attack_truncated(family: &Family, labeling: &Labeling, bits: usize) -> DetAttackReport {
    det_crossing_attack(family, &labeling.truncated(bits))
}

/// The smallest per-label bit budget at which no collision exists among the
/// copies (a measured analogue of the Theorem 4.4 bound for a specific
/// labeling): truncating below this always yields a collision.
#[must_use]
pub fn collision_free_budget(family: &Family, labeling: &Labeling) -> usize {
    let max = labeling.max_bits();
    (0..=max)
        .find(|&b| find_label_collision(&labeling.truncated(b), family).is_none())
        .unwrap_or(max + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use rpls_core::engine;
    use rpls_core::Pls;
    use rpls_graph::cycles;
    use rpls_graph::NodeId;
    use rpls_schemes::acyclicity::AcyclicityPls;

    /// Labels every node with the same constant: every pair collides.
    fn constant_labeling(n: usize, bits: usize) -> Labeling {
        Labeling::new(vec![BitString::zeros(bits); n])
    }

    #[test]
    fn constant_labels_always_fooled() {
        let f = families::acyclicity_path(18);
        let labeling = constant_labeling(18, 3);
        let report = det_crossing_attack(&f, &labeling);
        assert!(report.succeeded());
        let crossed = report.crossed.unwrap();
        // Predicate flipped: the path became cyclic.
        assert!(cycles::is_forest(f.config.graph()));
        assert!(cycles::has_cycle(crossed.graph()));
    }

    #[test]
    fn honest_acyclicity_labels_resist_the_attack() {
        // Full Θ(log n) labels: distances differ across copies, so no
        // collision exists and the attack reports failure.
        let f = families::acyclicity_path(18);
        let labeling = AcyclicityPls.label(&f.config);
        let report = det_crossing_attack(&f, &labeling);
        assert!(report.collision.is_none());
        assert!(!report.succeeded());
    }

    #[test]
    fn truncation_below_threshold_gets_fooled() {
        let f = families::acyclicity_path(33); // r = 10 copies
        let labeling = AcyclicityPls.label(&f.config);
        // At 0 bits everything collides.
        let report = det_attack_truncated(&f, &labeling, 0);
        assert!(report.succeeded());
        // The measured collision-free budget is positive.
        let budget = collision_free_budget(&f, &labeling);
        assert!(budget > 0);
    }

    #[test]
    fn views_identical_detects_label_differences() {
        let f = families::acyclicity_path(12);
        let labeling = AcyclicityPls.label(&f.config);
        // Crossing without a collision: views must differ.
        let crossed_graph =
            rpls_graph::crossing::cross_copies(f.config.graph(), &f.copies, 0, 1).unwrap();
        let crossed = f.config.with_graph(crossed_graph);
        assert!(!views_identical(&f.config, &crossed, &labeling));
    }

    #[test]
    fn fooled_views_fool_a_real_verifier() {
        // With view preservation established, an actual verifier must give
        // identical votes on both configurations.
        let f = families::acyclicity_path(18);
        let labeling = constant_labeling(18, 2);
        let report = det_crossing_attack(&f, &labeling);
        let crossed = report.crossed.unwrap();
        let before = engine::run_deterministic(&AcyclicityPls, &f.config, &labeling);
        let after = engine::run_deterministic(&AcyclicityPls, &crossed, &labeling);
        assert_eq!(before.votes(), after.votes());
    }

    #[test]
    fn label_strings_follow_iso_order() {
        let f = families::acyclicity_path(12);
        let labeling = AcyclicityPls.label(&f.config);
        let s0 = copy_label_string(&labeling, &f, 0);
        assert_eq!(s0.len(), 2 * labeling.get(NodeId::new(3)).len());
    }
}
