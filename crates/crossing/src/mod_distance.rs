//! A tunable-budget acyclicity scheme: distances modulo `2^B`.
//!
//! The lower-bound experiments need a scheme that (a) is *complete* at
//! every bit budget `B` and (b) degrades gracefully: sound when `B` is
//! large enough that wrap-arounds cannot hide a cycle, provably fooled by
//! the Proposition 4.3 crossing when `B` drops below the pigeonhole
//! threshold. Reducing the classic distance labeling modulo `2^B` does
//! exactly that:
//!
//! * every node checks that exactly one neighbor sits at `d − 1 (mod 2^B)`
//!   and all others at `d + 1 (mod 2^B)` — or that it is a local root with
//!   all neighbors at `+1`;
//! * on a path the true distances satisfy this at any `B`;
//! * on a cycle whose length is a multiple of `2^B`, the reduced distances
//!   wrap seamlessly and every node accepts — the scheme is *fooled*,
//!   exactly as Theorem 4.4 predicts must happen once `B < log₂(r)/2s`.

use rpls_bits::BitWriter;
use rpls_core::{Configuration, DetView, Labeling, Pls};

/// The `B`-bit modular-distance acyclicity scheme.
#[derive(Debug, Clone, Copy)]
pub struct ModDistancePls {
    bits: u32,
}

impl ModDistancePls {
    /// The scheme with `bits`-bit labels (distances modulo `2^bits`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 32.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        Self { bits }
    }

    /// The label budget `B`.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    fn modulus(&self) -> u64 {
        1u64 << self.bits
    }
}

impl Pls for ModDistancePls {
    fn name(&self) -> String {
        format!("mod-distance({} bits)", self.bits)
    }

    fn label(&self, config: &Configuration) -> Labeling {
        let g = config.graph();
        let root = g
            .nodes()
            .min_by_key(|&v| config.state(v).id())
            .expect("nonempty graph");
        let bfs = rpls_graph::traversal::bfs(g, root);
        let m = self.modulus();
        g.nodes()
            .map(|v| {
                let d = bfs.dist[v.index()].expect("connected graph") as u64 % m;
                let mut w = BitWriter::new();
                w.write_u64(d, self.bits);
                w.finish()
            })
            .collect()
    }

    fn verify(&self, view: &DetView<'_>) -> bool {
        let m = self.modulus();
        if view.label.len() != self.bits as usize {
            return false;
        }
        let own = view.label.leading_u64();
        let mut below = 0usize;
        for l in &view.neighbor_labels {
            if l.len() != self.bits as usize {
                return false;
            }
            let d = l.leading_u64();
            if d == (own + m - 1) % m {
                below += 1;
            } else if d != (own + 1) % m {
                return false;
            }
        }
        // A local root (everyone above) or a regular node (exactly one
        // parent below). With B = 1 the residues `own − 1` and `own + 1`
        // coincide, so only the alternation is checkable and the parent
        // count carries no information.
        m == 2 || below <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det_attack::{det_crossing_attack, find_label_collision};
    use crate::families;
    use rpls_bits::BitString;
    use rpls_core::engine;
    use rpls_graph::{cycles, generators};

    #[test]
    fn complete_on_paths_at_every_budget() {
        for bits in [1u32, 2, 3, 5, 8] {
            let c = Configuration::plain(generators::path(20));
            let scheme = ModDistancePls::new(bits);
            let labeling = scheme.label(&c);
            assert_eq!(labeling.max_bits(), bits as usize);
            let out = engine::run_deterministic(&scheme, &c, &labeling);
            assert!(out.accepted(), "B = {bits}");
        }
    }

    #[test]
    fn sound_on_cycles_with_large_budget() {
        // 2^B > n: no wrap can close; some node must reject its own honest
        // labeling, and small exhaustive forging fails too.
        let c = Configuration::plain(generators::cycle(4));
        let scheme = ModDistancePls::new(3);
        let labeling = scheme.label(&c);
        assert!(!engine::run_deterministic(&scheme, &c, &labeling).accepted());
        assert!(rpls_core::adversary::exhaustive_forge(&scheme, &c, 3).is_none());
    }

    #[test]
    fn fooled_on_cycles_whose_length_wraps() {
        // A cycle of length 8 with B = 2 (modulus 4): distances 0,1,2,3
        // repeat and everyone accepts a cyclic graph.
        let c = Configuration::plain(generators::cycle(8));
        let scheme = ModDistancePls::new(2);
        let labeling: Labeling = (0..8u64)
            .map(|i| {
                let mut w = BitWriter::new();
                w.write_u64(i % 4, 2);
                w.finish()
            })
            .collect();
        let out = engine::run_deterministic(&scheme, &c, &labeling);
        assert!(out.accepted(), "wrap-around fools the modular check");
        assert!(cycles::has_cycle(c.graph()));
    }

    #[test]
    fn crossing_attack_succeeds_below_threshold() {
        // r = 12 copies on a 39-node path; B = 1 bit ≪ log(12)/2. The
        // pigeonhole pair exists and the crossing fools the scheme into
        // accepting a cyclic graph.
        let f = families::acyclicity_path(39);
        let scheme = ModDistancePls::new(1);
        let labeling = scheme.label(&f.config);
        assert!(engine::run_deterministic(&scheme, &f.config, &labeling).accepted());

        let report = det_crossing_attack(&f, &labeling);
        assert!(report.succeeded(), "collision must exist at B = 1");
        let crossed = report.crossed.unwrap();
        assert!(cycles::has_cycle(crossed.graph()), "predicate flipped");
        let out = engine::run_deterministic(&scheme, &crossed, &labeling);
        assert!(
            out.accepted(),
            "the verifier is fooled on the crossed graph"
        );
    }

    #[test]
    fn large_budget_has_no_collision_on_the_family() {
        let f = families::acyclicity_path(39);
        let scheme = ModDistancePls::new(8); // 2^8 > n: distances distinct
        let labeling = scheme.label(&f.config);
        assert!(find_label_collision(&labeling, &f).is_none());
    }

    #[test]
    fn malformed_label_width_rejected() {
        let c = Configuration::plain(generators::path(4));
        let scheme = ModDistancePls::new(3);
        let labeling = Labeling::new(vec![BitString::zeros(5); 4]);
        assert!(!engine::run_deterministic(&scheme, &c, &labeling).accepted());
    }
}
