//! Proposition 4.6 executed: ε-rounded certificate distributions and the
//! acceptance-probability transfer for two-sided, edge-independent schemes.
//!
//! The proof of Proposition 4.6 replaces exact certificate distributions by
//! their ε-rounded versions (probabilities floored to multiples of ε),
//! counts them, and pigeonholes: with
//! `κ < (1/2s − o(1))·log log r` two copies must agree on every rounded
//! distribution, and swapping their (independent) certificate sources
//! changes the global acceptance probability by at most `4s·2^κ·ε` — so an
//! accepted configuration stays accepted after crossing.
//!
//! This module measures the same quantities empirically: sampled
//! distributions, their roundings, colliding pairs, and the acceptance gap
//! `|Pr[accept G] − Pr[accept σ⋈(G)]|`.

use rpls_bits::BitString;
use rpls_core::engine::{self, mix_seed};
use rpls_core::{Configuration, Labeling, Rpls};
use rpls_graph::crossing::cross_copies;
use rpls_graph::NodeId;
use std::collections::BTreeMap;

use crate::families::Family;

/// An ε-rounded empirical distribution: certificate → `⌊p/ε⌋`.
pub type RoundedDistribution = BTreeMap<BitString, u64>;

/// Samples the distribution of certificates `from` sends towards `to` and
/// rounds each probability down to a multiple of `epsilon`. Certificates
/// whose rounded mass is zero are dropped (they cannot distinguish two
/// roundings).
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn rounded_distribution<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    from: NodeId,
    to: NodeId,
    epsilon: f64,
    samples: usize,
    stream_seed: u64,
) -> RoundedDistribution {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0, 1)");
    let g = config.graph();
    let nb = g
        .neighbors(from)
        .find(|nb| nb.node == to)
        .expect("nodes must be adjacent");
    let view = rpls_core::CertView {
        local: engine::local_context(config, from),
        label: labeling.get(from),
    };
    let mut counts: BTreeMap<BitString, usize> = BTreeMap::new();
    for t in 0..samples {
        use rand::SeedableRng;
        // The stream is a parameter (not node-derived) so that two nodes
        // with the same certificate distribution produce the same empirical
        // counts — exactly mirroring the paper's comparison of true
        // distributions, without floor-rounding noise at the boundaries.
        let mut rng = rand::rngs::StdRng::seed_from_u64(mix_seed(stream_seed, t as u64, 0));
        *counts
            .entry(scheme.certify(&view, nb.port, &mut rng))
            .or_default() += 1;
    }
    counts
        .into_iter()
        .filter_map(|(cert, c)| {
            let p = c as f64 / samples as f64;
            let floored = (p / epsilon).floor() as u64;
            (floored > 0).then_some((cert, floored))
        })
        .collect()
}

/// The rounded-distribution signature of copy `i` (both directions of each
/// edge, shared order).
#[must_use]
pub fn copy_distribution_signature<S: Rpls + ?Sized>(
    scheme: &S,
    family: &Family,
    labeling: &Labeling,
    i: usize,
    epsilon: f64,
    samples: usize,
    seed: u64,
) -> Vec<RoundedDistribution> {
    let g = family.config.graph();
    family
        .copies
        .ordered_edges(g, i)
        .into_iter()
        .enumerate()
        .flat_map(|(pos, (a, b))| {
            let c = &family.config;
            [
                rounded_distribution(
                    scheme,
                    c,
                    labeling,
                    a,
                    b,
                    epsilon,
                    samples,
                    mix_seed(seed, pos as u64, 0),
                ),
                rounded_distribution(
                    scheme,
                    c,
                    labeling,
                    b,
                    a,
                    epsilon,
                    samples,
                    mix_seed(seed, pos as u64, 1),
                ),
            ]
        })
        .collect()
}

/// Finds two copies with identical rounded-distribution signatures.
#[must_use]
pub fn find_distribution_collision<S: Rpls + ?Sized>(
    scheme: &S,
    family: &Family,
    labeling: &Labeling,
    epsilon: f64,
    samples: usize,
    seed: u64,
) -> Option<(usize, usize)> {
    let mut seen: std::collections::HashMap<Vec<RoundedDistribution>, usize> =
        std::collections::HashMap::new();
    for i in 0..family.copy_count() {
        let sig = copy_distribution_signature(scheme, family, labeling, i, epsilon, samples, seed);
        if let Some(&j) = seen.get(&sig) {
            return Some((j, i));
        }
        seen.insert(sig, i);
    }
    None
}

/// Outcome of the two-sided crossing experiment.
#[derive(Debug, Clone)]
pub struct TwoSidedAttackReport {
    /// The distribution-colliding pair, if found.
    pub collision: Option<(usize, usize)>,
    /// Acceptance probability on the original configuration.
    pub original_acceptance: f64,
    /// Acceptance probability on the crossed configuration.
    pub crossed_acceptance: f64,
}

impl TwoSidedAttackReport {
    /// The measured acceptance gap `|Pr[G] − Pr[σ⋈(G)]|`, which
    /// Proposition 4.6 bounds below 1/3 for colliding pairs.
    #[must_use]
    pub fn acceptance_gap(&self) -> f64 {
        (self.original_acceptance - self.crossed_acceptance).abs()
    }
}

/// Runs the Proposition 4.6 experiment: find a rounded-distribution
/// collision, cross, and measure the acceptance gap.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn twosided_crossing_attack<S: Rpls + ?Sized>(
    scheme: &S,
    family: &Family,
    labeling: &Labeling,
    epsilon: f64,
    samples: usize,
    trials: usize,
    seed: u64,
) -> TwoSidedAttackReport {
    let original_acceptance =
        rpls_core::stats::acceptance_probability(scheme, &family.config, labeling, trials, seed);
    let Some((i, j)) =
        find_distribution_collision(scheme, family, labeling, epsilon, samples, seed)
    else {
        return TwoSidedAttackReport {
            collision: None,
            original_acceptance,
            crossed_acceptance: 0.0,
        };
    };
    let crossed_graph = cross_copies(family.config.graph(), &family.copies, i, j)
        .expect("family copies are crossable");
    let crossed = family.config.with_graph(crossed_graph);
    let crossed_acceptance =
        rpls_core::stats::acceptance_probability(scheme, &crossed, labeling, trials, seed + 1);
    TwoSidedAttackReport {
        collision: Some((i, j)),
        original_acceptance,
        crossed_acceptance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::mod_distance::ModDistancePls;
    use rpls_core::CompiledRpls;

    #[test]
    fn rounded_distributions_collide_for_equal_labels() {
        let f = families::acyclicity_path(39);
        let scheme = CompiledRpls::new(ModDistancePls::new(1));
        let labeling = scheme.label(&f.config);
        let pair = find_distribution_collision(&scheme, &f, &labeling, 0.01, 800, 2);
        assert!(pair.is_some());
    }

    #[test]
    fn acceptance_gap_is_small_for_colliding_pairs() {
        let f = families::acyclicity_path(39);
        let scheme = CompiledRpls::new(ModDistancePls::new(1));
        let labeling = scheme.label(&f.config);
        let report = twosided_crossing_attack(&scheme, &f, &labeling, 0.01, 800, 120, 4);
        assert!(report.collision.is_some());
        assert!(
            report.acceptance_gap() < 1.0 / 3.0,
            "gap = {}",
            report.acceptance_gap()
        );
        // For this one-sided scheme the transfer is in fact exact.
        assert!(report.crossed_acceptance > 0.99);
    }

    #[test]
    fn distinct_labels_give_distinct_distributions() {
        let f = families::acyclicity_path(39);
        let scheme = CompiledRpls::new(ModDistancePls::new(8));
        let labeling = scheme.label(&f.config);
        assert!(find_distribution_collision(&scheme, &f, &labeling, 0.005, 600, 6).is_none());
    }

    #[test]
    fn rounding_drops_rare_certificates() {
        let f = families::acyclicity_path(12);
        let scheme = CompiledRpls::new(ModDistancePls::new(2));
        let labeling = scheme.label(&f.config);
        let (a, b) = f.copies.ordered_edges(f.config.graph(), 0)[0];
        // Coarse ε: with hundreds of distinct fingerprints at p ≈ 1/p each,
        // an ε of 1/10 floors every mass to zero.
        let coarse = rounded_distribution(&scheme, &f.config, &labeling, a, b, 0.1, 500, 1);
        assert!(coarse.is_empty());
        // Fine ε keeps them.
        let fine = rounded_distribution(&scheme, &f.config, &labeling, a, b, 0.001, 500, 1);
        assert!(!fine.is_empty());
    }
}
