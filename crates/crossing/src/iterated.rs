//! Theorem 5.5 executed: iterated crossing.
//!
//! Theorem 5.4 distinguishes a graph with a c-cycle from graphs with
//! (c−1)-cycles by a single crossing. Theorem 5.5 strengthens the bound to
//! hold against the family "n-cycle vs everything below c": starting from
//! the wheel (an n-cycle with chords), repeatedly find two *remaining*
//! independent cycle edges whose labels collide and cross them, halving
//! cycles until everything is shorter than `c`. Each individual crossing
//! preserves every node's view, so the composition does too: the final
//! graph — with all cycles short — is still accepted by any deterministic
//! verifier that accepted the original.

use rpls_bits::BitString;
use rpls_core::{Configuration, Labeling};
use rpls_graph::crossing::{cross, PortIsomorphism};
use rpls_graph::subgraph::Subgraph;
use rpls_graph::NodeId;

use crate::det_attack::views_identical;

/// Outcome of the iterated crossing of Theorem 5.5.
#[derive(Debug, Clone)]
pub struct IteratedReport {
    /// The final configuration after all crossings.
    pub final_config: Configuration,
    /// Number of crossings performed.
    pub crossings: usize,
    /// Whether every node's view is identical to the original's (the
    /// composed fooling guarantee).
    pub views_preserved: bool,
    /// Length of the longest simple cycle in the final graph.
    pub final_longest_cycle: Option<usize>,
}

/// Iteratively crosses label-colliding pairs from `oriented_edges` (each a
/// single-edge copy in the original graph) until no colliding pair remains
/// or `stop_below` is reached by the longest cycle.
///
/// Returns the final configuration along with the fooling verdict.
///
/// # Panics
///
/// Panics if an oriented pair is not an edge of the configuration.
#[must_use]
pub fn iterated_crossing(
    config: &Configuration,
    labeling: &Labeling,
    oriented_edges: &[(NodeId, NodeId)],
    stop_below: usize,
) -> IteratedReport {
    let mut graph = config.graph().clone();
    let mut remaining: Vec<(NodeId, NodeId)> = oriented_edges.to_vec();
    let mut crossings = 0usize;

    loop {
        if graph.node_count() <= 64 {
            if let Some(len) = rpls_graph::cycles::longest_cycle(&graph) {
                if len < stop_below {
                    break;
                }
            } else {
                break;
            }
        }
        // Group remaining copies by their label strings.
        let mut by_label: std::collections::HashMap<BitString, Vec<usize>> =
            std::collections::HashMap::new();
        for (idx, &(a, b)) in remaining.iter().enumerate() {
            let key = BitString::concat([labeling.get(a), labeling.get(b)]);
            by_label.entry(key).or_default().push(idx);
        }
        let Some(pair) = by_label.values().find(|v| v.len() >= 2) else {
            break; // no colliding pair left
        };
        let (i, j) = (pair[0], pair[1]);
        let (a1, b1) = remaining[i];
        let (a2, b2) = remaining[j];
        let eid = graph
            .edge_between(a1, b1)
            .expect("copy edge present in current graph");
        let h = Subgraph::from_edges(&graph, [eid]);
        let sigma = PortIsomorphism::from_pairs([(a1, a2), (b1, b2)]).expect("distinct endpoints");
        graph = cross(&graph, &sigma, &h).expect("copies remain crossable");
        crossings += 1;
        // Both copies are consumed.
        let mut kept = Vec::with_capacity(remaining.len() - 2);
        for (idx, e) in remaining.into_iter().enumerate() {
            if idx != i && idx != j {
                kept.push(e);
            }
        }
        remaining = kept;
    }

    let final_config = config.with_graph(graph);
    let views_preserved = views_identical(config, &final_config, labeling);
    let final_longest_cycle = if final_config.graph().node_count() <= 64 {
        rpls_graph::cycles::longest_cycle(final_config.graph())
    } else {
        None
    };
    IteratedReport {
        final_config,
        crossings,
        views_preserved,
        final_longest_cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpls_core::engine;
    use rpls_core::Pls;
    use rpls_graph::{cycles, generators};

    /// The Theorem 5.5 setting: the wheel (n-cycle with chords) labeled
    /// with constant (zero-bit-budget) labels; iterate crossings on the rim
    /// until all cycles are short.
    #[test]
    fn iterated_crossing_destroys_long_cycles_invisibly() {
        let n = 24;
        let g = generators::wheel(n);
        let config = Configuration::plain(g);
        let labeling = Labeling::new(vec![BitString::zeros(1); n]);
        // Independent rim copies away from v0.
        let edges: Vec<(NodeId, NodeId)> = (1..=(n / 3 - 1))
            .map(|i| (NodeId::new(3 * i), NodeId::new(3 * i + 1)))
            .collect();
        assert_eq!(cycles::longest_cycle(config.graph()), Some(n));

        let report = iterated_crossing(&config, &labeling, &edges, 10);
        assert!(report.crossings >= 2, "crossings = {}", report.crossings);
        assert!(report.views_preserved, "fooling must be invisible");
        let final_len = report.final_longest_cycle.unwrap();
        assert!(final_len < n, "long cycle destroyed: {final_len}");
    }

    #[test]
    fn verifier_verdict_survives_iterated_crossing() {
        // Any deterministic verifier sees identical views, so its votes are
        // identical; spot-check with the modular-distance scheme.
        let n = 24;
        let config = Configuration::plain(generators::wheel(n));
        let scheme = crate::mod_distance::ModDistancePls::new(1);
        let labeling = scheme.label(&config);
        let edges: Vec<(NodeId, NodeId)> = (1..=(n / 3 - 1))
            .map(|i| (NodeId::new(3 * i), NodeId::new(3 * i + 1)))
            .collect();
        let report = iterated_crossing(&config, &labeling, &edges, 6);
        if report.views_preserved {
            let before = engine::run_deterministic(&scheme, &config, &labeling);
            let after = engine::run_deterministic(&scheme, &report.final_config, &labeling);
            assert_eq!(before.votes(), after.votes());
        }
        assert!(report.crossings >= 1);
    }

    #[test]
    fn distinct_labels_stop_the_iteration() {
        // Wide labels: no collisions, zero crossings.
        let n = 15;
        let config = Configuration::plain(generators::wheel(n));
        let labeling: Labeling = (0..n as u64)
            .map(|i| {
                let mut w = rpls_bits::BitWriter::new();
                w.write_u64(i, 8);
                w.finish()
            })
            .collect();
        let edges: Vec<(NodeId, NodeId)> = (1..=(n / 3 - 1))
            .map(|i| (NodeId::new(3 * i), NodeId::new(3 * i + 1)))
            .collect();
        let report = iterated_crossing(&config, &labeling, &edges, 3);
        assert_eq!(report.crossings, 0);
        assert!(report.views_preserved); // nothing changed
        assert_eq!(report.final_longest_cycle, Some(n));
    }
}
