//! Proposition 4.8 executed: the support-pigeonhole attack on one-sided
//! randomized schemes.
//!
//! A one-sided scheme must accept a legal configuration with probability 1,
//! so at every node only certificates that are *always accepted* can carry
//! positive probability. If two independent copies induce identical
//! certificate **supports** on their corresponding directed edges —
//! guaranteed by pigeonhole once `κ < (1/2s)·log log r` — then every
//! certificate exchanged in the crossed configuration is one the receiving
//! node already accepts, and the crossed (illegal) configuration is
//! accepted with probability 1.
//!
//! Supports are measured empirically by sampling certificate generation
//! across many seeds; for the fingerprint-based compiled schemes the
//! support is the finite set `{(x, P(x)) : x ∈ GF(p)}`, covered quickly.

use rpls_bits::BitString;
use rpls_core::engine::{self, mix_seed};
use rpls_core::{Configuration, Labeling, Rpls};
use rpls_graph::crossing::cross_copies;
use rpls_graph::NodeId;
use std::collections::BTreeSet;

use crate::families::Family;

/// The sampled certificate support of one directed edge `(from → to)`.
pub type Support = BTreeSet<BitString>;

/// Samples the support of the certificates node `from` generates for its
/// port towards `to`, over `samples` draws from the stream identified by
/// `stream_seed`.
///
/// Callers comparing corresponding edges of different copies should pass
/// the **same** `stream_seed` for corresponding positions: the sampled set
/// is then a deterministic function of the node's certificate distribution,
/// so equal distributions give equal samples (and the sets converge to the
/// true supports regardless).
#[must_use]
pub fn sample_support<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    from: NodeId,
    to: NodeId,
    samples: usize,
    stream_seed: u64,
) -> Support {
    let g = config.graph();
    let nb = g
        .neighbors(from)
        .find(|nb| nb.node == to)
        .expect("nodes must be adjacent");
    let view = rpls_core::CertView {
        local: engine::local_context(config, from),
        label: labeling.get(from),
    };
    (0..samples)
        .map(|t| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(mix_seed(stream_seed, t as u64, 0));
            scheme.certify(&view, nb.port, &mut rng)
        })
        .collect()
}

/// The support signature of copy `i`: one support per directed edge, in the
/// shared order induced by the isomorphisms. The sampling stream is derived
/// from the *position* (edge rank and direction within the copy), not the
/// node, so corresponding edges of different copies are probed identically.
#[must_use]
pub fn copy_support_signature<S: Rpls + ?Sized>(
    scheme: &S,
    family: &Family,
    labeling: &Labeling,
    i: usize,
    samples: usize,
    seed: u64,
) -> Vec<Support> {
    let g = family.config.graph();
    family
        .copies
        .ordered_edges(g, i)
        .into_iter()
        .enumerate()
        .flat_map(|(pos, (a, b))| {
            [
                sample_support(
                    scheme,
                    &family.config,
                    labeling,
                    a,
                    b,
                    samples,
                    mix_seed(seed, pos as u64, 0),
                ),
                sample_support(
                    scheme,
                    &family.config,
                    labeling,
                    b,
                    a,
                    samples,
                    mix_seed(seed, pos as u64, 1),
                ),
            ]
        })
        .collect()
}

/// Finds two copies with identical support signatures.
#[must_use]
pub fn find_support_collision<S: Rpls + ?Sized>(
    scheme: &S,
    family: &Family,
    labeling: &Labeling,
    samples: usize,
    seed: u64,
) -> Option<(usize, usize)> {
    let mut seen: std::collections::HashMap<Vec<Support>, usize> = std::collections::HashMap::new();
    for i in 0..family.copy_count() {
        let sig = copy_support_signature(scheme, family, labeling, i, samples, seed);
        if let Some(&j) = seen.get(&sig) {
            return Some((j, i));
        }
        seen.insert(sig, i);
    }
    None
}

/// Outcome of the one-sided crossing attack.
#[derive(Debug, Clone)]
pub struct OneSidedAttackReport {
    /// The support-colliding pair, if found.
    pub collision: Option<(usize, usize)>,
    /// The crossed configuration.
    pub crossed: Option<Configuration>,
    /// Measured acceptance probability on the original configuration.
    pub original_acceptance: f64,
    /// Measured acceptance probability on the crossed configuration (with
    /// the same labels). `1.0` here against a flipped predicate is the
    /// Proposition 4.8 conclusion.
    pub crossed_acceptance: f64,
}

impl OneSidedAttackReport {
    /// Whether the attack went through: a collision existed and the crossed
    /// configuration is accepted essentially always.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.collision.is_some() && self.crossed_acceptance >= 0.999
    }
}

/// Runs the full Proposition 4.8 attack.
#[must_use]
pub fn onesided_crossing_attack<S: Rpls + ?Sized>(
    scheme: &S,
    family: &Family,
    labeling: &Labeling,
    samples: usize,
    trials: usize,
    seed: u64,
) -> OneSidedAttackReport {
    let original_acceptance =
        rpls_core::stats::acceptance_probability(scheme, &family.config, labeling, trials, seed);
    let Some((i, j)) = find_support_collision(scheme, family, labeling, samples, seed) else {
        return OneSidedAttackReport {
            collision: None,
            crossed: None,
            original_acceptance,
            crossed_acceptance: 0.0,
        };
    };
    let crossed_graph = cross_copies(family.config.graph(), &family.copies, i, j)
        .expect("family copies are crossable");
    let crossed = family.config.with_graph(crossed_graph);
    let crossed_acceptance =
        rpls_core::stats::acceptance_probability(scheme, &crossed, labeling, trials, seed + 1);
    OneSidedAttackReport {
        collision: Some((i, j)),
        crossed: Some(crossed),
        original_acceptance,
        crossed_acceptance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::mod_distance::ModDistancePls;
    use rpls_core::CompiledRpls;
    use rpls_graph::cycles;

    #[test]
    fn compiled_mod_distance_supports_collide_and_attack_lands() {
        // B = 1: inner labels repeat with period 2 along the path, so the
        // fingerprint supports of distinct copies coincide. The compiled
        // scheme is one-sided; the crossed cyclic graph is accepted w.p. 1.
        let f = families::acyclicity_path(39);
        let scheme = CompiledRpls::new(ModDistancePls::new(1));
        let labeling = scheme.label(&f.config);
        let report = onesided_crossing_attack(&scheme, &f, &labeling, 600, 60, 3);
        assert_eq!(report.original_acceptance, 1.0);
        assert!(report.succeeded(), "collision: {:?}", report.collision);
        assert!(cycles::has_cycle(report.crossed.unwrap().graph()));
    }

    #[test]
    fn wide_inner_labels_have_distinct_supports() {
        // B = 8 > log n: all copy distances differ, fingerprint supports
        // differ, no collision.
        let f = families::acyclicity_path(39);
        let scheme = CompiledRpls::new(ModDistancePls::new(8));
        let labeling = scheme.label(&f.config);
        assert!(find_support_collision(&scheme, &f, &labeling, 400, 5).is_none());
    }

    #[test]
    fn support_sampling_is_deterministic_in_seed() {
        let f = families::acyclicity_path(12);
        let scheme = CompiledRpls::new(ModDistancePls::new(2));
        let labeling = scheme.label(&f.config);
        let a = copy_support_signature(&scheme, &f, &labeling, 0, 100, 7);
        let b = copy_support_signature(&scheme, &f, &labeling, 0, 100, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn supports_are_nontrivial_sets() {
        let f = families::acyclicity_path(12);
        let scheme = CompiledRpls::new(ModDistancePls::new(2));
        let labeling = scheme.label(&f.config);
        let sig = copy_support_signature(&scheme, &f, &labeling, 0, 300, 1);
        // Fingerprints range over many evaluation points.
        assert!(sig.iter().all(|s| s.len() > 10));
    }
}
