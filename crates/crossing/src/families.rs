//! The concrete lower-bound families of §5, packaged for the attacks.

use rpls_core::Configuration;
use rpls_graph::crossing::IndependentCopies;
use rpls_graph::{generators, NodeId};

/// A lower-bound instance: a legal configuration, its independent copies,
/// and what the crossing is supposed to break.
#[derive(Debug, Clone)]
pub struct Family {
    /// Human-readable description for reports.
    pub name: String,
    /// The legal configuration `G_s`.
    pub config: Configuration,
    /// The `r` pairwise independent isomorphic copies with their
    /// isomorphisms.
    pub copies: IndependentCopies,
}

impl Family {
    /// `r`, the number of copies.
    #[must_use]
    pub fn copy_count(&self) -> usize {
        self.copies.count()
    }

    /// `s`, the edges per copy.
    #[must_use]
    pub fn edges_per_copy(&self) -> usize {
        self.copies.edges_per_copy()
    }

    /// The deterministic pigeonhole threshold of Theorem 4.4 in bits:
    /// schemes below `log₂(r) / 2s` per label are guaranteed a colliding
    /// pair.
    #[must_use]
    pub fn det_threshold_bits(&self) -> f64 {
        (self.copy_count() as f64).log2() / (2.0 * self.edges_per_copy() as f64)
    }

    /// The randomized threshold of Theorem 4.7 in bits:
    /// `log₂ log₂(r) / 2s`.
    #[must_use]
    pub fn rand_threshold_bits(&self) -> f64 {
        (self.copy_count() as f64).log2().log2() / (2.0 * self.edges_per_copy() as f64)
    }
}

/// Theorem 5.1's family: the path `u_0 … u_{n-1}` (acyclic, hence a legal
/// MST/acyclicity instance) with single-edge copies
/// `H_i = {u_{3i}, u_{3i+1}}`. Crossing any two copies closes a cycle.
///
/// # Panics
///
/// Panics if `n < 9` (needs at least two copies).
#[must_use]
pub fn acyclicity_path(n: usize) -> Family {
    assert!(n >= 9, "need at least two independent copies");
    let g = generators::path(n);
    let edges: Vec<(NodeId, NodeId)> = (1..n / 3)
        .map(|i| (NodeId::new(3 * i), NodeId::new(3 * i + 1)))
        .collect();
    let copies = IndependentCopies::single_edges(&g, &edges)
        .expect("path copies are independent and port-preserving");
    Family {
        name: format!("acyclicity-path(n={n})"),
        config: Configuration::plain(g),
        copies,
    }
}

/// Theorem 5.2's family: the Figure 2 wheel (biconnected) with single-edge
/// rim copies `H_i = {v_{3i}, v_{3i+1}}`. Crossing disconnects the rim and
/// makes `v0` an articulation point (Figure 2(b)).
///
/// # Panics
///
/// Panics if `n < 10`.
#[must_use]
pub fn wheel(n: usize) -> Family {
    assert!(n >= 10, "need at least two independent rim copies");
    let g = generators::wheel(n);
    // Rim edges away from v0 (whose incident rim edges border the chords).
    let edges: Vec<(NodeId, NodeId)> = (1..=(n / 3 - 1))
        .map(|i| (NodeId::new(3 * i), NodeId::new(3 * i + 1)))
        .collect();
    let copies = IndependentCopies::single_edges(&g, &edges)
        .expect("wheel rim copies are independent and port-preserving");
    Family {
        name: format!("wheel(n={n})"),
        config: Configuration::plain(g),
        copies,
    }
}

/// Theorem 5.4's family: the restricted wheel — a `c`-cycle with spokes
/// from `v0` to everything (cycle-at-least-c holds) and copies on the cycle
/// part only. Crossing splits the long cycle into two short ones.
///
/// # Panics
///
/// Panics if `c < 10` or `n < c`.
#[must_use]
pub fn wheel_cycle(n: usize, c: usize) -> Family {
    assert!(c >= 10, "need at least two independent cycle copies");
    let g = generators::wheel_with_tail(n, c);
    let edges: Vec<(NodeId, NodeId)> = (1..=(c / 3 - 1))
        .map(|i| (NodeId::new(3 * i), NodeId::new(3 * i + 1)))
        .collect();
    let copies = IndependentCopies::single_edges(&g, &edges)
        .expect("cycle copies are independent and port-preserving");
    Family {
        name: format!("wheel-cycle(n={n}, c={c})"),
        config: Configuration::plain(g),
        copies,
    }
}

/// Theorem 5.6's family: the Figure 5 chain of `count` cycles of
/// `cycle_len` nodes each (cycle-at-most-`cycle_len` holds), one copy edge
/// per cycle. Crossing two copies merges their cycles into one of double
/// length.
///
/// # Panics
///
/// Panics if `cycle_len < 6` (smaller cycles leave no edge clear of the
/// bridge endpoints) or `count < 2`.
#[must_use]
pub fn chain_of_cycles(count: usize, cycle_len: usize) -> Family {
    assert!(
        cycle_len >= 6,
        "cycle too short to host an independent copy"
    );
    assert!(count >= 2, "need at least two cycles");
    let g = generators::chain_of_cycles(count, cycle_len);
    // Bridge endpoints within each cycle are node 1 and node len/2; the
    // edge {len-2, len-1} avoids both.
    let edges: Vec<(NodeId, NodeId)> = (0..count)
        .map(|k| {
            let base = k * cycle_len;
            (
                NodeId::new(base + cycle_len - 2),
                NodeId::new(base + cycle_len - 1),
            )
        })
        .collect();
    let copies = IndependentCopies::single_edges(&g, &edges)
        .expect("per-cycle copies are independent and port-preserving");
    Family {
        name: format!("chain-of-cycles(count={count}, len={cycle_len})"),
        config: Configuration::plain(g),
        copies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpls_graph::crossing::cross_copies;
    use rpls_graph::{connectivity, cycles};

    #[test]
    fn path_family_crossing_creates_cycle() {
        let f = acyclicity_path(18);
        assert!(f.copy_count() >= 4);
        assert!(cycles::is_forest(f.config.graph()));
        for j in 1..f.copy_count() {
            let crossed = cross_copies(f.config.graph(), &f.copies, 0, j).unwrap();
            assert!(cycles::has_cycle(&crossed), "pair (0, {j})");
        }
    }

    #[test]
    fn wheel_family_crossing_breaks_biconnectivity() {
        let f = wheel(16);
        assert!(connectivity::is_biconnected(f.config.graph()));
        let crossed = cross_copies(f.config.graph(), &f.copies, 0, 2).unwrap();
        assert!(connectivity::is_connected(&crossed));
        assert!(!connectivity::is_biconnected(&crossed));
    }

    #[test]
    fn wheel_cycle_family_crossing_shortens_cycles() {
        let (n, c) = (16, 12);
        let f = wheel_cycle(n, c);
        assert!(cycles::has_cycle_at_least(f.config.graph(), c));
        let crossed = cross_copies(f.config.graph(), &f.copies, 0, 1).unwrap();
        assert!(
            !cycles::has_cycle_at_least(&crossed, c),
            "crossing must split the long cycle"
        );
    }

    #[test]
    fn chain_family_crossing_merges_cycles() {
        let f = chain_of_cycles(3, 6);
        assert!(cycles::all_cycles_at_most(f.config.graph(), 6));
        let crossed = cross_copies(f.config.graph(), &f.copies, 0, 2).unwrap();
        assert!(
            !cycles::all_cycles_at_most(&crossed, 6),
            "crossing must create a long cycle"
        );
        assert!(cycles::has_cycle_at_least(&crossed, 12));
    }

    #[test]
    fn thresholds_are_positive_and_ordered() {
        let f = acyclicity_path(60);
        assert!(f.det_threshold_bits() > f.rand_threshold_bits());
        assert!(f.rand_threshold_bits() > 0.0);
    }
}
