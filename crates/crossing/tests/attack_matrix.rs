//! The attack matrix: every §4 attack against every §5 family, at budgets
//! straddling the theoretical thresholds.

use rpls_bits::BitString;
use rpls_core::{engine, CompiledRpls, Labeling, Pls, Rpls};
use rpls_crossing::det_attack::{det_crossing_attack, find_label_collision};
use rpls_crossing::onesided_attack::onesided_crossing_attack;
use rpls_crossing::{families, Family, ModDistancePls};
use rpls_graph::{connectivity, cycles};

fn constant_labels(f: &Family, bits: usize) -> Labeling {
    Labeling::new(vec![BitString::zeros(bits); f.config.node_count()])
}

#[test]
fn det_attack_lands_on_every_family_at_one_bit() {
    let families: Vec<Family> = vec![
        families::acyclicity_path(30),
        families::wheel(16),
        families::wheel_cycle(20, 15),
        families::chain_of_cycles(3, 6),
    ];
    for f in families {
        let labeling = constant_labels(&f, 1);
        let report = det_crossing_attack(&f, &labeling);
        assert!(report.succeeded(), "{} not fooled", f.name);
        assert!(report.crossed.is_some());
    }
}

#[test]
fn predicates_flip_family_specifically() {
    // Each family's crossing must flip exactly its own predicate.
    let f = families::acyclicity_path(30);
    let crossed = det_crossing_attack(&f, &constant_labels(&f, 1))
        .crossed
        .unwrap();
    assert!(cycles::is_forest(f.config.graph()) && !cycles::is_forest(crossed.graph()));

    let f = families::wheel(16);
    let crossed = det_crossing_attack(&f, &constant_labels(&f, 1))
        .crossed
        .unwrap();
    assert!(
        connectivity::is_biconnected(f.config.graph())
            && !connectivity::is_biconnected(crossed.graph())
    );

    let f = families::wheel_cycle(20, 15);
    let crossed = det_crossing_attack(&f, &constant_labels(&f, 1))
        .crossed
        .unwrap();
    assert!(
        cycles::has_cycle_at_least(f.config.graph(), 15)
            && !cycles::has_cycle_at_least(crossed.graph(), 15)
    );

    let f = families::chain_of_cycles(3, 6);
    let crossed = det_crossing_attack(&f, &constant_labels(&f, 1))
        .crossed
        .unwrap();
    assert!(
        cycles::all_cycles_at_most(f.config.graph(), 6)
            && !cycles::all_cycles_at_most(crossed.graph(), 6)
    );
}

#[test]
fn thresholds_grow_with_r() {
    let small = families::acyclicity_path(30);
    let large = families::acyclicity_path(300);
    assert!(large.det_threshold_bits() > small.det_threshold_bits());
    assert!(large.rand_threshold_bits() > small.rand_threshold_bits());
    // log log grows much slower than log.
    let det_growth = large.det_threshold_bits() - small.det_threshold_bits();
    let rand_growth = large.rand_threshold_bits() - small.rand_threshold_bits();
    assert!(rand_growth < det_growth);
}

#[test]
fn attack_verdict_equivalence_is_two_way() {
    // Prop 4.3 is an iff: a *rejected* configuration stays rejected after
    // the crossing too. Use mod-distance labels deliberately inconsistent
    // with the path (all-zero labels make interior nodes reject).
    let f = families::acyclicity_path(30);
    let scheme = ModDistancePls::new(2);
    let labeling = constant_labels(&f, 2);
    let before = engine::run_deterministic(&scheme, &f.config, &labeling);
    assert!(!before.accepted(), "constant labels break the ±1 rule");
    let report = det_crossing_attack(&f, &labeling);
    let crossed = report.crossed.unwrap();
    let after = engine::run_deterministic(&scheme, &crossed, &labeling);
    assert_eq!(before.votes(), after.votes(), "votes identical either way");
}

#[test]
fn onesided_attack_respects_the_support_structure() {
    // Compiled mod-distance at B=2 on a longer path: copies with congruent
    // positions mod 4 share supports; the attack transfers acceptance 1.
    let f = families::acyclicity_path(63); // r = 20 copies
    let scheme = CompiledRpls::new(ModDistancePls::new(2));
    let labeling = scheme.label(&f.config);
    let report = onesided_crossing_attack(&scheme, &f, &labeling, 700, 50, 17);
    assert_eq!(report.original_acceptance, 1.0);
    assert!(report.succeeded());
    let crossed = report.crossed.unwrap();
    assert!(cycles::has_cycle(crossed.graph()), "predicate flipped");
}

#[test]
fn honest_labels_have_no_collisions_on_any_family() {
    use rpls_schemes::acyclicity::AcyclicityPls;
    use rpls_schemes::biconnectivity::BiconnectivityPls;
    let f = families::acyclicity_path(60);
    assert!(find_label_collision(&AcyclicityPls.label(&f.config), &f).is_none());
    let f = families::wheel(31);
    assert!(find_label_collision(&BiconnectivityPls.label(&f.config), &f).is_none());
}

#[test]
fn views_preserved_is_necessary_for_success() {
    // With labels that differ between the crossed copies, views change and
    // the attack must report failure even if we force a crossing.
    let f = families::acyclicity_path(30);
    let labeling: Labeling = (0..30u64)
        .map(|i| {
            let mut w = rpls_bits::BitWriter::new();
            w.write_u64(i, 8);
            w.finish()
        })
        .collect();
    let report = det_crossing_attack(&f, &labeling);
    assert!(report.collision.is_none());
    assert!(!report.succeeded());
}
