//! Robustness pins for the hardened service front: worker supervision,
//! deadlines, fair shedding, quotas, and slow/hostile TCP clients.

use rpls_service::registry::{self, request_skeleton};
use rpls_service::service::{Service, ServiceConfig};
use rpls_service::tcp::{FrontConfig, TcpFront};
use rpls_service::wire::{self, JobReply, JobRequest, ShedReason};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_job(tenant: &str) -> JobRequest {
    let mut req = request_skeleton("spanning-tree", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    req.trials = 10;
    req.tenant = tenant.to_string();
    req
}

/// A job heavy enough to occupy the worker for a while — long relative to
/// any plausible scheduler stall of the test thread, so queue-state
/// assertions made while it computes are effectively race-free.
fn slow_job(tenant: &str) -> JobRequest {
    let mut req = request_skeleton(
        "spanning-tree",
        32,
        &(0..32).map(|i| (i, (i + 1) % 32)).collect::<Vec<_>>(),
    );
    req.trials = 1_000_000;
    req.tenant = tenant.to_string();
    req
}

fn crash_job() -> JobRequest {
    let mut req = request_skeleton(registry::CRASH_TEST_SCHEME, 3, &[(0, 1), (1, 2)]);
    req.trials = 2;
    req
}

/// Waits until the worker has dequeued everything submitted so far, i.e.
/// the latest submission is executing (or done) rather than queued.
fn wait_for_pickup(service: &Service) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while service.queued_count() > 0 {
        assert!(Instant::now() < deadline, "worker never picked the job up");
        std::thread::sleep(Duration::from_millis(1));
    }
}

// ---------------------------------------------------------------- service

/// A worker panic mid-batch costs exactly one `WorkerFault` reply; every
/// other job in the batch completes normally and the restart is counted.
#[test]
fn worker_panic_costs_exactly_one_job() {
    let service = Service::spawn();
    let direct_ok = small_job("a");
    match service.submit(direct_ok.clone()) {
        JobReply::Ok(resp) => assert_eq!(resp.accepts, resp.trials),
        other => panic!("warmup failed: {other:?}"),
    }
    assert_eq!(
        service.submit(crash_job()),
        JobReply::Shed(ShedReason::WorkerFault)
    );
    // The service keeps serving, on a fresh worker.
    match service.submit(direct_ok) {
        JobReply::Ok(resp) => assert_eq!(resp.accepts, resp.trials),
        other => panic!("service must survive the panic: {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.worker_faults, 1);
    assert_eq!(stats.worker_restarts, 1);
    assert_eq!(stats.completed, 3);
    service.shutdown();
}

/// Several injected panics in sequence: one fault and one restart each,
/// nothing else lost.
#[test]
fn repeated_worker_panics_each_cost_one_restart() {
    let service = Service::spawn();
    for round in 1..=3u64 {
        assert_eq!(
            service.submit(crash_job()),
            JobReply::Shed(ShedReason::WorkerFault)
        );
        match service.submit(small_job("a")) {
            JobReply::Ok(_) => {}
            other => panic!("round {round}: service died: {other:?}"),
        }
        let stats = service.stats();
        assert_eq!(stats.worker_faults, round);
        assert_eq!(stats.worker_restarts, round);
    }
    service.shutdown();
}

/// A job whose deadline passes while it waits in the queue is shed with
/// `DeadlineExceeded`, not computed uselessly; an unexpired one runs.
#[test]
fn queued_jobs_past_their_deadline_are_shed() {
    let service = Service::spawn();
    // Occupy the worker with a pipeline of slow jobs, then queue a job
    // that can only expire behind them: even if this thread stalls, the
    // worker has several slow computations between it and the doomed job.
    let busy: Vec<_> = (0..3)
        .map(|_| service.submit_nowait(slow_job("busy")).expect("room"))
        .collect();
    let mut doomed = small_job("d");
    doomed.deadline_ms = Some(1);
    let doomed_rx = service.submit_nowait(doomed).expect("queue has room");
    let mut relaxed = small_job("r");
    relaxed.deadline_ms = Some(wire::MAX_DEADLINE_MS);
    let relaxed_rx = service.submit_nowait(relaxed).expect("queue has room");
    assert_eq!(
        doomed_rx.recv().expect("always answered"),
        JobReply::Shed(ShedReason::DeadlineExceeded)
    );
    match relaxed_rx.recv().expect("always answered") {
        JobReply::Ok(_) => {}
        other => panic!("unexpired job must run: {other:?}"),
    }
    for rx in busy {
        match rx.recv().expect("always answered") {
            JobReply::Ok(_) => {}
            other => panic!("the slow jobs had no deadline: {other:?}"),
        }
    }
    let stats = service.stats();
    assert_eq!(stats.deadline_sheds, 1);
    assert_eq!(stats.completed, 5, "a deadline shed is still a disposal");
    service.shutdown();
}

/// `ServiceConfig::default_deadline` applies to jobs that carry none.
#[test]
fn default_deadline_covers_deadline_less_jobs() {
    let service = Service::with_config(ServiceConfig {
        default_deadline: Some(Duration::from_millis(1)),
        ..ServiceConfig::default()
    });
    // The busy jobs opt out of the default with their own generous
    // deadline; the doomed one carries none and inherits the 1ms default.
    let busy: Vec<_> = (0..3)
        .map(|_| {
            let mut req = slow_job("busy");
            req.deadline_ms = Some(wire::MAX_DEADLINE_MS);
            service.submit_nowait(req).expect("room")
        })
        .collect();
    let doomed_rx = service.submit_nowait(small_job("d")).expect("room");
    assert_eq!(
        doomed_rx.recv().expect("always answered"),
        JobReply::Shed(ShedReason::DeadlineExceeded)
    );
    for rx in busy {
        let _ = rx.recv();
    }
    service.shutdown();
}

/// When the queue fills, the heaviest tenant's newest queued job is
/// evicted in favor of a lighter tenant — one noisy tenant cannot starve
/// the rest.
#[test]
fn fair_shedding_evicts_the_heaviest_tenant() {
    let service = Service::with_capacity(3);
    // The noisy tenant grabs the worker and the whole queue.
    let mut noisy = vec![service.submit_nowait(slow_job("noisy")).expect("worker")];
    wait_for_pickup(&service);
    for _ in 0..3 {
        noisy.push(service.submit_nowait(slow_job("noisy")).expect("queue"));
    }
    // A light tenant arrives: it must be admitted, evicting a noisy job.
    let light = service
        .submit_nowait(small_job("light"))
        .expect("fair shedding must admit the lighter tenant");
    // Exactly one noisy job was answered QueueFull (the newest queued one).
    let shed_replies = noisy
        .iter()
        .filter(|rx| {
            matches!(
                rx.recv().expect("always answered"),
                JobReply::Shed(ShedReason::QueueFull)
            )
        })
        .count();
    assert_eq!(shed_replies, 1, "exactly one eviction");
    match light.recv().expect("always answered") {
        JobReply::Ok(resp) => assert_eq!(resp.accepts, resp.trials),
        other => panic!("light tenant's job must run: {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!(service.shed_count(), 1);
    service.shutdown();
}

/// A tenant as heavy as the queue's heaviest gains nothing by racing
/// itself: the newcomer is shed, queued jobs stay (the pre-fairness
/// behavior, still pinned for single-tenant workloads).
#[test]
fn a_tenant_cannot_evict_itself() {
    let service = Service::with_capacity(2);
    let mut pending = vec![service.submit_nowait(slow_job("solo")).expect("worker")];
    wait_for_pickup(&service);
    for _ in 0..2 {
        pending.push(service.submit_nowait(slow_job("solo")).expect("queue"));
    }
    match service.submit_nowait(slow_job("solo")) {
        Err(ShedReason::QueueFull) => {}
        other => panic!("the newcomer must be shed, got {other:?}"),
    }
    for rx in pending {
        match rx.recv().expect("always answered") {
            JobReply::Ok(_) => {}
            other => panic!("queued jobs must survive: {other:?}"),
        }
    }
    assert_eq!(service.stats().evictions, 0);
    service.shutdown();
}

/// The hard per-tenant quota caps in-flight jobs outright, even with an
/// empty queue.
#[test]
fn tenant_quota_caps_inflight_jobs() {
    let service = Service::with_config(ServiceConfig {
        tenant_quota: Some(2),
        ..ServiceConfig::default()
    });
    let a1 = service.submit_nowait(slow_job("a")).expect("1st in quota");
    let a2 = service.submit_nowait(slow_job("a")).expect("2nd in quota");
    match service.submit_nowait(small_job("a")) {
        Err(ShedReason::QueueFull) => {}
        other => panic!("3rd must exceed the quota, got {other:?}"),
    }
    // Another tenant is unaffected.
    let b = service.submit_nowait(small_job("b")).expect("b unaffected");
    let stats = service.stats();
    assert_eq!(stats.quota_sheds, 1);
    for rx in [a1, a2, b] {
        match rx.recv().expect("always answered") {
            JobReply::Ok(_) => {}
            other => panic!("admitted jobs must run: {other:?}"),
        }
    }
    service.shutdown();
}

// -------------------------------------------------------------- tcp front

fn front_fixture(config: FrontConfig) -> (Arc<Service>, TcpFront) {
    let service = Arc::new(Service::spawn());
    let front = TcpFront::spawn_with(Arc::clone(&service), config).expect("bind localhost");
    (service, front)
}

fn quick_front() -> (Arc<Service>, TcpFront) {
    front_fixture(FrontConfig {
        frame_timeout: Duration::from_millis(250),
        idle_timeout: None,
    })
}

fn roundtrip(stream: &mut TcpStream, req: &JobRequest) -> JobReply {
    wire::write_frame(stream, &req.encode()).expect("send");
    let payload = wire::read_frame(stream).expect("reply frame");
    JobReply::decode(&payload).expect("reply decodes")
}

/// A slowloris trickling a frame one byte at a time is cut at the frame
/// deadline — while a well-behaved client on another connection keeps
/// being served throughout.
#[test]
fn slowloris_is_cut_while_others_are_served() {
    let (service, front) = quick_front();
    let mut slow = TcpStream::connect(front.addr()).expect("connect");
    let frame = {
        let mut buf = Vec::new();
        wire::write_frame(&mut buf, &small_job("slow").encode()).expect("encode");
        buf
    };
    // Trickle the first bytes to start the frame clock.
    slow.write_all(&frame[..2]).expect("trickle");
    let started = Instant::now();
    // Meanwhile the good client gets real service.
    let mut good = TcpStream::connect(front.addr()).expect("connect");
    match roundtrip(&mut good, &small_job("good")) {
        JobReply::Ok(resp) => assert_eq!(resp.accepts, resp.trials),
        other => panic!("good client starved: {other:?}"),
    }
    // The slowloris connection is closed by the deadline: subsequent
    // trickles eventually fail, and no reply ever arrives.
    slow.set_read_timeout(Some(Duration::from_millis(50))).ok();
    let mut byte = [0u8; 1];
    let dead = loop {
        std::thread::sleep(Duration::from_millis(40));
        if slow.write_all(&frame[2..3]).is_err() {
            break true;
        }
        match slow.read(&mut byte) {
            Ok(0) => break true,
            Ok(_) => panic!("no reply frame can exist for an unfinished request"),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if started.elapsed() > Duration::from_secs(5) {
                    break false;
                }
            }
            Err(_) => break true,
        }
    };
    assert!(dead, "slowloris connection must be cut by the deadline");
    // And the good client is still fine afterwards.
    match roundtrip(&mut good, &small_job("good")) {
        JobReply::Ok(_) => {}
        other => panic!("good client must survive: {other:?}"),
    }
    drop(good);
    front.stop();
    drop(service);
}

/// A client hanging up mid-frame neither wedges the front nor earns a
/// phantom job; other connections continue unharmed.
#[test]
fn midframe_hangup_is_harmless() {
    let (service, front) = quick_front();
    let frame = {
        let mut buf = Vec::new();
        wire::write_frame(&mut buf, &small_job("gone").encode()).expect("encode");
        buf
    };
    {
        let mut quitter = TcpStream::connect(front.addr()).expect("connect");
        quitter.write_all(&frame[..frame.len() / 2]).expect("half");
    } // dropped: RST/EOF mid-frame
    let mut good = TcpStream::connect(front.addr()).expect("connect");
    match roundtrip(&mut good, &small_job("good")) {
        JobReply::Ok(_) => {}
        other => panic!("front must keep serving: {other:?}"),
    }
    // The aborted half-frame never became a job.
    assert_eq!(service.completed_count(), 1);
    drop(good);
    front.stop();
    drop(service);
}

/// A hostile 4 GiB length prefix is answered with a hangup, not an
/// allocation: the front stays healthy.
#[test]
fn hostile_length_prefix_over_tcp_is_rejected() {
    let (service, front) = quick_front();
    let mut hostile = TcpStream::connect(front.addr()).expect("connect");
    hostile.write_all(&u32::MAX.to_le_bytes()).expect("header");
    hostile.set_read_timeout(Some(Duration::from_secs(2))).ok();
    let mut buf = [0u8; 1];
    match hostile.read(&mut buf) {
        Ok(0) | Err(_) => {} // hung up (or reset) — correct
        Ok(_) => panic!("no reply can exist for a rejected frame"),
    }
    let mut good = TcpStream::connect(front.addr()).expect("connect");
    match roundtrip(&mut good, &small_job("good")) {
        JobReply::Ok(_) => {}
        other => panic!("front must keep serving: {other:?}"),
    }
    drop(good);
    front.stop();
    drop(service);
}

/// `idle_timeout` reaps parked connections that never start a frame.
#[test]
fn idle_connections_are_reaped() {
    let (service, front) = front_fixture(FrontConfig {
        frame_timeout: Duration::from_millis(250),
        idle_timeout: Some(Duration::from_millis(100)),
    });
    let mut idle = TcpStream::connect(front.addr()).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(3))).ok();
    let mut buf = [0u8; 1];
    let started = Instant::now();
    match idle.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(_) => panic!("nothing to read on an idle connection"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "idle connection must be closed by the idle deadline"
    );
    front.stop();
    drop(service);
}

/// `TcpFront::stop` drains: a request already in flight when stop is
/// called still gets its reply before the connection closes.
#[test]
fn stop_drains_inflight_requests() {
    let (service, front) = front_fixture(FrontConfig {
        frame_timeout: Duration::from_secs(5),
        idle_timeout: None,
    });
    let mut stream = TcpStream::connect(front.addr()).expect("connect");
    let req = slow_job("drain");
    wire::write_frame(&mut stream, &req.encode()).expect("send");
    // Give the handler a moment to pick the frame up, then stop the front
    // while the job is still being computed.
    std::thread::sleep(Duration::from_millis(50));
    let stopper = std::thread::spawn(move || front.stop());
    let payload = wire::read_frame(&mut stream).expect("drained reply");
    match JobReply::decode(&payload).expect("reply decodes") {
        JobReply::Ok(resp) => assert_eq!(resp.accepts, resp.trials),
        other => panic!("in-flight job must be answered: {other:?}"),
    }
    stopper.join().expect("front.stop returns");
    drop(service);
}

/// Checksummed frames are served and answered in kind over TCP; a frame
/// whose checksum lies is dropped without a reply.
#[test]
fn checked_frames_are_answered_in_kind() {
    let (service, front) = quick_front();
    let mut stream = TcpStream::connect(front.addr()).expect("connect");
    let req = small_job("sum");
    wire::write_frame_checked(&mut stream, &req.encode()).expect("send");
    let (payload, checked) = wire::read_frame_tagged(&mut stream).expect("reply");
    assert!(checked, "a checked request earns a checked reply");
    match JobReply::decode(&payload).expect("reply decodes") {
        JobReply::Ok(resp) => assert_eq!(resp.accepts, resp.trials),
        other => panic!("job should run: {other:?}"),
    }
    // Corrupt a checked frame on the wire: the front hangs up instead of
    // decoding garbage (or worse, a plausible different job).
    let mut bad = TcpStream::connect(front.addr()).expect("connect");
    let mut buf = Vec::new();
    wire::write_frame_checked(&mut buf, &req.encode()).expect("encode");
    let at = buf.len() - 3;
    buf[at] ^= 0x10;
    bad.write_all(&buf).expect("send corrupted");
    bad.set_read_timeout(Some(Duration::from_secs(2))).ok();
    let mut byte = [0u8; 1];
    match bad.read(&mut byte) {
        Ok(0) | Err(_) => {}
        Ok(_) => panic!("no reply can exist for a corrupted frame"),
    }
    drop(stream);
    front.stop();
    drop(service);
}
