//! End-to-end service smoke: a mixed multi-tenant batch whose verdicts are
//! bit-identical to direct engine runs, a nonzero shared-cache hit rate,
//! explicit backpressure, and the TCP front speaking the same frames.

use rpls_bits::BitString;
use rpls_core::engine::{MessagePattern, SeedSource};
use rpls_core::stats::{self, EstimateOpts};
use rpls_service::registry::{self, request_skeleton};
use rpls_service::service::Service;
use rpls_service::wire::{self, JobReply, JobRequest, JobResponse, ShedReason, WireFaults};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

/// The mixed three-tenant workload: different schemes, graphs, patterns,
/// fault environments, and seed sources, with repeats so the shared cache
/// has something to hit on.
fn tenant_batch() -> Vec<JobRequest> {
    // Tenant A: spanning-tree on a 6-cycle, private coins.
    let mut a = request_skeleton(
        "spanning-tree",
        6,
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
    );
    a.trials = 40;
    a.seed_source = SeedSource::Trial(7);

    // Tenant B: uniformity on a path, broadcast pattern, beacon coins.
    let mut b = request_skeleton("uniformity", 5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
    b.payload = BitString::from_bools((0..48).map(|i| i % 3 == 0));
    b.trials = 25;
    b.pattern = MessagePattern::Broadcast;
    b.rounds = 2;
    b.seed_source = SeedSource::Beacon {
        round_id: 4242,
        value: 0xFEED_F00D,
    };

    // Tenant C: leader on a star, lossy network.
    let mut c = request_skeleton("leader", 5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
    c.param = 2;
    c.trials = 30;
    c.seed_source = SeedSource::Trial(99);
    c.faults = Some(WireFaults {
        drop_rate: 0.2,
        corrupt_rate: 0.05,
        duplicate_rate: 0.0,
        crash_rate: 0.0,
        retry_budget: 0,
        fault_seed: 13,
    });

    // Interleave with repeats: tenants resubmit, which is exactly what the
    // shared cache amortises.
    vec![
        a.clone(),
        b.clone(),
        c.clone(),
        b.clone(),
        a.clone(),
        c,
        a,
        b,
    ]
}

/// What the engine says when the same job runs directly, with a private
/// fresh cache — the ground truth the service must match bit-for-bit.
fn direct_estimate(req: &JobRequest) -> stats::Estimate {
    let job = registry::build(req).expect("batch jobs are well-formed");
    stats::estimate(
        &*job.scheme,
        &job.config,
        &job.labeling,
        &req.run_spec(),
        &EstimateOpts::new(req.trials as usize),
    )
}

fn assert_matches_direct(resp: &JobResponse, direct: &stats::Estimate) {
    assert_eq!(resp.trials, direct.trials as u64);
    assert_eq!(resp.accepts, direct.accepts as u64);
    assert_eq!(resp.degraded_trials, direct.degraded_trials as u64);
    assert_eq!(resp.missing_messages, direct.missing_messages as u64);
    assert_eq!(resp.dropped, direct.counts.dropped as u64);
    assert_eq!(resp.corrupted, direct.counts.corrupted as u64);
    assert_eq!(resp.crashed_nodes, direct.counts.crashed_nodes as u64);
}

#[test]
fn mixed_tenant_batch_matches_direct_engine_and_shares_the_cache() {
    let service = Service::spawn();
    let batch = tenant_batch();
    let mut last = None;
    for req in &batch {
        let direct = direct_estimate(req);
        match service.submit(req.clone()) {
            JobReply::Ok(resp) => {
                assert_matches_direct(&resp, &direct);
                last = Some(resp);
            }
            JobReply::Shed(reason) => panic!("job shed: {reason}"),
        }
    }
    let last = last.expect("batch is non-empty");
    // The resubmissions hit the shared cache: nonzero hit rate, and the
    // tenants actually shared (label content recurs across jobs).
    assert!(last.cache.hits > 0, "no cache hits: {:?}", last.cache);
    assert!(last.cache.hit_rate() > 0.0);
    assert_eq!(service.completed_count(), batch.len() as u64);
    assert_eq!(service.shed_count(), 0);
    assert_eq!(service.cache_stats(), last.cache);
    service.shutdown();
}

#[test]
fn bad_jobs_shed_with_a_reason_not_a_dead_worker() {
    let service = Service::spawn();
    let mut unknown = request_skeleton("no-such-scheme", 3, &[(0, 1), (1, 2)]);
    unknown.trials = 5;
    assert_eq!(
        service.submit(unknown),
        JobReply::Shed(ShedReason::UnknownScheme("no-such-scheme".into()))
    );
    // Disconnected graph for a connectivity-requiring scheme.
    let disconnected = request_skeleton("spanning-tree", 4, &[(0, 1), (2, 3)]);
    match service.submit(disconnected) {
        JobReply::Shed(ShedReason::BadJob(_)) => {}
        other => panic!("expected BadJob shed, got {other:?}"),
    }
    // Labeling arity mismatch.
    let mut short = request_skeleton("coloring", 4, &[(0, 1), (1, 2), (2, 3)]);
    short.labeling = Some(vec![BitString::new(); 2]);
    match service.submit(short) {
        JobReply::Shed(ShedReason::BadJob(_)) => {}
        other => panic!("expected BadJob shed, got {other:?}"),
    }
    // The worker survived all of it and still runs good jobs.
    let mut ok = request_skeleton("coloring", 4, &[(0, 1), (1, 2), (2, 3)]);
    ok.trials = 10;
    match service.submit(ok) {
        JobReply::Ok(resp) => assert_eq!(resp.acceptance(), 1.0),
        other => panic!("worker should still serve: {other:?}"),
    }
    service.shutdown();
}

#[test]
fn full_queue_sheds_instead_of_blocking() {
    // Capacity 2: one slow job occupies the worker, two more fill the
    // queue, the burst after that must shed.
    let service = Service::with_capacity(2);
    let mut slow = request_skeleton(
        "spanning-tree",
        32,
        &(0..32).map(|i| (i, (i + 1) % 32)).collect::<Vec<_>>(),
    );
    slow.trials = 200_000;
    let mut pending = vec![service.submit_nowait(slow.clone()).expect("worker idle")];
    let mut sheds = 0u64;
    for _ in 0..32 {
        match service.submit_nowait(slow.clone()) {
            Ok(rx) => pending.push(rx),
            Err(ShedReason::QueueFull) => sheds += 1,
            Err(other) => panic!("unexpected shed: {other:?}"),
        }
    }
    assert!(sheds > 0, "a capacity-2 queue must shed a 32-job burst");
    assert_eq!(service.shed_count(), sheds);
    for rx in pending {
        match rx.recv().expect("worker replies") {
            JobReply::Ok(resp) => assert_eq!(resp.accepts, resp.trials),
            other => panic!("queued job failed: {other:?}"),
        }
    }
    service.shutdown();
}

#[test]
fn tcp_front_serves_the_same_verdicts() {
    let service = Arc::new(Service::spawn());
    let front = rpls_service::TcpFront::spawn(Arc::clone(&service)).expect("bind localhost");
    let mut stream = TcpStream::connect(front.addr()).expect("connect");
    for req in tenant_batch().into_iter().take(4) {
        let direct = direct_estimate(&req);
        wire::write_frame(&mut stream, &req.encode()).expect("send");
        let payload = wire::read_frame(&mut stream).expect("reply frame");
        match wire::JobReply::decode(&payload).expect("reply decodes") {
            JobReply::Ok(resp) => assert_matches_direct(&resp, &direct),
            JobReply::Shed(reason) => panic!("tcp job shed: {reason}"),
        }
    }
    // Garbage frames come back as malformed sheds, not hangups.
    wire::write_frame(&mut stream, b"definitely not a job").expect("send garbage");
    let payload = wire::read_frame(&mut stream).expect("reply frame");
    match wire::JobReply::decode(&payload).expect("reply decodes") {
        JobReply::Shed(ShedReason::Malformed(_)) => {}
        other => panic!("expected malformed shed, got {other:?}"),
    }
    drop(stream);
    front.stop();
    let hit_rate = service.cache_stats().hit_rate();
    assert!(hit_rate > 0.0, "tcp batch should share the cache");
}

#[test]
fn writer_flush_on_oversized_frame_is_rejected() {
    let mut sink = Vec::new();
    let big = vec![0u8; (wire::MAX_FRAME_LEN as usize) + 1];
    assert!(wire::write_frame(&mut sink, &big).is_err());
    sink.write_all(b"").unwrap();
}
