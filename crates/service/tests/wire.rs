//! Wire-format properties: encode/decode round-trips on randomized jobs,
//! and total decoding on adversarial bytes — no input may panic.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use rpls_bits::BitString;
use rpls_core::engine::{MessagePattern, SeedSource, StreamMode};
use rpls_core::prep::CacheStats;
use rpls_service::wire::{JobReply, JobRequest, JobResponse, ShedReason, WireEdge, WireFaults};

/// A randomized but well-formed request drawn from `seed`.
fn random_request(seed: u64) -> JobRequest {
    let mut rng = StdRng::seed_from_u64(seed);
    let node_count = rng.random_range(1u32..12);
    // A random subset of the complete graph's edges, no duplicates.
    let mut edges = Vec::new();
    for u in 0..node_count {
        for v in (u + 1)..node_count {
            if rng.random_bool(0.4) {
                let weight = rng.random_bool(0.3).then(|| rng.next_u64());
                edges.push(WireEdge { u, v, weight });
            }
        }
    }
    let ids = rng
        .random_bool(0.5)
        .then(|| (0..node_count).map(|_| rng.next_u64()).collect());
    let payload =
        BitString::from_bools((0..rng.random_range(0usize..64)).map(|_| rng.random_bool(0.5)));
    let labeling = rng.random_bool(0.5).then(|| {
        (0..node_count)
            .map(|_| {
                BitString::from_bools(
                    (0..rng.random_range(0usize..24)).map(|_| rng.random_bool(0.5)),
                )
            })
            .collect()
    });
    let pattern = match rng.random_range(0u32..4) {
        0 => MessagePattern::PerPort,
        1 => MessagePattern::Broadcast,
        2 => MessagePattern::Unicast,
        _ => MessagePattern::KMessages(rng.random_range(1usize..5)),
    };
    let milli = |rng: &mut StdRng| rng.random_range(0u64..=1000) as f64 / 1000.0;
    let faults = rng.random_bool(0.5).then(|| WireFaults {
        drop_rate: milli(&mut rng),
        corrupt_rate: milli(&mut rng),
        duplicate_rate: milli(&mut rng),
        crash_rate: milli(&mut rng),
        retry_budget: rng.random_range(0u32..4),
        fault_seed: rng.next_u64(),
    });
    let seed_source = if rng.random_bool(0.5) {
        SeedSource::Trial(rng.next_u64())
    } else {
        SeedSource::Beacon {
            round_id: rng.next_u64(),
            value: rng.next_u64(),
        }
    };
    JobRequest {
        scheme: ["spanning-tree", "leader", "coloring", "uniformity", "x"]
            [rng.random_range(0usize..5)]
        .to_string(),
        node_count,
        edges,
        ids,
        param: rng.next_u64(),
        payload,
        labeling,
        trials: rng.random_range(1u32..1000),
        rounds: rng.random_range(1u32..8),
        pattern,
        stream_mode: if rng.random_bool(0.5) {
            StreamMode::EdgeIndependent
        } else {
            StreamMode::SharedPerNode
        },
        faults,
        seed_source,
    }
}

fn random_reply(seed: u64) -> JobReply {
    let mut rng = StdRng::seed_from_u64(seed);
    if rng.random_bool(0.5) {
        JobReply::Ok(JobResponse {
            trials: rng.next_u64(),
            accepts: rng.next_u64(),
            degraded_trials: rng.next_u64(),
            missing_messages: rng.next_u64(),
            dropped: rng.next_u64(),
            corrupted: rng.next_u64(),
            duplicated: rng.next_u64(),
            crashed_nodes: rng.next_u64(),
            retries: rng.next_u64(),
            cache: CacheStats {
                hits: rng.next_u64(),
                misses: rng.next_u64(),
                epochs: rng.next_u64(),
                retained_bytes: rng.next_u64(),
                shared_fingerprints: rng.random_range(0usize..1 << 20),
                shared_labels: rng.random_range(0usize..1 << 20),
                table_slots_reserved: rng.next_u64(),
            },
        })
    } else {
        JobReply::Shed(match rng.random_range(0u32..4) {
            0 => ShedReason::QueueFull,
            1 => ShedReason::UnknownScheme("who".into()),
            2 => ShedReason::BadJob("because".into()),
            _ => ShedReason::Malformed("bytes".into()),
        })
    }
}

proptest! {
    /// Well-formed requests survive an encode/decode round trip exactly.
    #[test]
    fn request_round_trips(seed in any::<u64>()) {
        let req = random_request(seed);
        let decoded = JobRequest::decode(&req.encode());
        prop_assert_eq!(decoded, Ok(req));
    }

    /// Replies round-trip exactly, both Ok and every shed reason.
    #[test]
    fn reply_round_trips(seed in any::<u64>()) {
        let reply = random_reply(seed);
        let decoded = JobReply::decode(&reply.encode());
        prop_assert_eq!(decoded, Ok(reply));
    }

    /// Arbitrary bytes never panic either decoder — a hostile client can
    /// at worst earn a WireError.
    #[test]
    fn adversarial_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = JobRequest::decode(&bytes);
        let _ = JobReply::decode(&bytes);
    }

    /// Mutating any single byte of a valid encoding (or truncating it
    /// anywhere) decodes totally: Ok or a WireError, never a panic.
    #[test]
    fn corrupted_encodings_never_panic(seed in any::<u64>(), at in any::<usize>(), flip in any::<u8>()) {
        let encoded = random_request(seed).encode();
        let mut mutated = encoded.clone();
        let at = at % mutated.len();
        mutated[at] ^= flip | 1;
        let _ = JobRequest::decode(&mutated);
        let _ = JobRequest::decode(&encoded[..at]);
    }
}
