//! Wire-format properties: encode/decode round-trips on randomized jobs,
//! and total decoding on adversarial bytes — no input may panic.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use rpls_bits::BitString;
use rpls_core::engine::{MessagePattern, SeedSource, StreamMode};
use rpls_core::prep::CacheStats;
use rpls_service::wire::{
    self, JobReply, JobRequest, JobResponse, ShedReason, WireEdge, WireFaults,
};

/// A randomized but well-formed request drawn from `seed`.
fn random_request(seed: u64) -> JobRequest {
    let mut rng = StdRng::seed_from_u64(seed);
    let node_count = rng.random_range(1u32..12);
    // A random subset of the complete graph's edges, no duplicates.
    let mut edges = Vec::new();
    for u in 0..node_count {
        for v in (u + 1)..node_count {
            if rng.random_bool(0.4) {
                let weight = rng.random_bool(0.3).then(|| rng.next_u64());
                edges.push(WireEdge { u, v, weight });
            }
        }
    }
    let ids = rng
        .random_bool(0.5)
        .then(|| (0..node_count).map(|_| rng.next_u64()).collect());
    let payload =
        BitString::from_bools((0..rng.random_range(0usize..64)).map(|_| rng.random_bool(0.5)));
    let labeling = rng.random_bool(0.5).then(|| {
        (0..node_count)
            .map(|_| {
                BitString::from_bools(
                    (0..rng.random_range(0usize..24)).map(|_| rng.random_bool(0.5)),
                )
            })
            .collect()
    });
    let pattern = match rng.random_range(0u32..4) {
        0 => MessagePattern::PerPort,
        1 => MessagePattern::Broadcast,
        2 => MessagePattern::Unicast,
        _ => MessagePattern::KMessages(rng.random_range(1usize..5)),
    };
    let milli = |rng: &mut StdRng| rng.random_range(0u64..=1000) as f64 / 1000.0;
    let faults = rng.random_bool(0.5).then(|| WireFaults {
        drop_rate: milli(&mut rng),
        corrupt_rate: milli(&mut rng),
        duplicate_rate: milli(&mut rng),
        crash_rate: milli(&mut rng),
        retry_budget: rng.random_range(0u32..4),
        fault_seed: rng.next_u64(),
    });
    let seed_source = if rng.random_bool(0.5) {
        SeedSource::Trial(rng.next_u64())
    } else {
        SeedSource::Beacon {
            round_id: rng.next_u64(),
            value: rng.next_u64(),
        }
    };
    JobRequest {
        scheme: ["spanning-tree", "leader", "coloring", "uniformity", "x"]
            [rng.random_range(0usize..5)]
        .to_string(),
        node_count,
        edges,
        ids,
        param: rng.next_u64(),
        payload,
        labeling,
        trials: rng.random_range(1u32..1000),
        rounds: rng.random_range(1u32..8),
        pattern,
        stream_mode: if rng.random_bool(0.5) {
            StreamMode::EdgeIndependent
        } else {
            StreamMode::SharedPerNode
        },
        faults,
        seed_source,
        tenant: ["", "tenant-a", "tenant-b", "平仄"][rng.random_range(0usize..4)].to_string(),
        deadline_ms: rng
            .random_bool(0.5)
            .then(|| rng.random_range(1u32..=wire::MAX_DEADLINE_MS)),
    }
}

fn random_reply(seed: u64) -> JobReply {
    let mut rng = StdRng::seed_from_u64(seed);
    if rng.random_bool(0.5) {
        JobReply::Ok(JobResponse {
            trials: rng.next_u64(),
            accepts: rng.next_u64(),
            degraded_trials: rng.next_u64(),
            missing_messages: rng.next_u64(),
            dropped: rng.next_u64(),
            corrupted: rng.next_u64(),
            duplicated: rng.next_u64(),
            crashed_nodes: rng.next_u64(),
            retries: rng.next_u64(),
            cache: CacheStats {
                hits: rng.next_u64(),
                misses: rng.next_u64(),
                epochs: rng.next_u64(),
                retained_bytes: rng.next_u64(),
                shared_fingerprints: rng.random_range(0usize..1 << 20),
                shared_labels: rng.random_range(0usize..1 << 20),
                table_slots_reserved: rng.next_u64(),
            },
        })
    } else {
        JobReply::Shed(match rng.random_range(0u32..6) {
            0 => ShedReason::QueueFull,
            1 => ShedReason::UnknownScheme("who".into()),
            2 => ShedReason::BadJob("because".into()),
            3 => ShedReason::DeadlineExceeded,
            4 => ShedReason::WorkerFault,
            _ => ShedReason::Malformed("bytes".into()),
        })
    }
}

proptest! {
    /// Well-formed requests survive an encode/decode round trip exactly.
    #[test]
    fn request_round_trips(seed in any::<u64>()) {
        let req = random_request(seed);
        let decoded = JobRequest::decode(&req.encode());
        prop_assert_eq!(decoded, Ok(req));
    }

    /// Replies round-trip exactly, both Ok and every shed reason.
    #[test]
    fn reply_round_trips(seed in any::<u64>()) {
        let reply = random_reply(seed);
        let decoded = JobReply::decode(&reply.encode());
        prop_assert_eq!(decoded, Ok(reply));
    }

    /// Arbitrary bytes never panic either decoder — a hostile client can
    /// at worst earn a WireError.
    #[test]
    fn adversarial_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = JobRequest::decode(&bytes);
        let _ = JobReply::decode(&bytes);
    }

    /// Mutating any single byte of a valid encoding (or truncating it
    /// anywhere) decodes totally: Ok or a WireError, never a panic.
    #[test]
    fn corrupted_encodings_never_panic(seed in any::<u64>(), at in any::<usize>(), flip in any::<u8>()) {
        let encoded = random_request(seed).encode();
        let mut mutated = encoded.clone();
        let at = at % mutated.len();
        mutated[at] ^= flip | 1;
        let _ = JobRequest::decode(&mutated);
        let _ = JobRequest::decode(&encoded[..at]);
    }

    /// Version-1 frames (no tenant, no deadline) still decode, yielding
    /// the defaults. Built by stripping the v2 tail — an empty tenant
    /// (4-byte zero length) plus the no-deadline tag byte — and patching
    /// the version byte.
    #[test]
    fn v1_request_frames_still_decode(seed in any::<u64>()) {
        let mut req = random_request(seed);
        req.tenant = String::new();
        req.deadline_ms = None;
        let mut v1 = req.encode();
        v1.truncate(v1.len() - 5);
        v1[4] = 1;
        prop_assert_eq!(JobRequest::decode(&v1), Ok(req));
    }
}

/// A hostile length prefix — up to the full 4 GiB range — earns an error
/// before any allocation, in both frame flavors.
#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    for word in [
        u32::MAX,
        wire::MAX_FRAME_LEN + 1,
        wire::FRAME_CHECKED_FLAG | (wire::MAX_FRAME_LEN + 1),
        0x7FFF_FFFF,
    ] {
        let err = wire::frame_header(word).expect_err("hostile length must be rejected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // The streaming reader rejects it too, without waiting for the
        // (absent) payload bytes.
        let mut bytes: &[u8] = &word.to_le_bytes();
        let err = wire::read_frame(&mut bytes).expect_err("reader must reject");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
    // The cap itself is fine (header-wise).
    assert_eq!(
        wire::frame_header(wire::MAX_FRAME_LEN).unwrap(),
        (wire::MAX_FRAME_LEN as usize, false)
    );
}

#[test]
fn checked_frames_round_trip_and_detect_corruption() {
    let payload = random_request(7).encode();
    let mut frame = Vec::new();
    wire::write_frame_checked(&mut frame, &payload).expect("write");
    let (read, checked) = wire::read_frame_tagged(&mut frame.as_slice()).expect("read");
    assert!(checked);
    assert_eq!(read, payload);

    // Any single-byte corruption — header flag aside — is caught: flipping
    // a checksum byte or a payload byte yields a clean InvalidData error,
    // never a silently different payload.
    for at in [4, 11, frame.len() - 1] {
        let mut bad = frame.clone();
        bad[at] ^= 0x40;
        let err = wire::read_frame(&mut bad.as_slice()).expect_err("corruption detected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    // Plain frames still read (and are tagged unchecked).
    let mut plain = Vec::new();
    wire::write_frame(&mut plain, &payload).expect("write");
    let (read, checked) = wire::read_frame_tagged(&mut plain.as_slice()).expect("read");
    assert!(!checked);
    assert_eq!(read, payload);
}

#[test]
fn deadline_field_is_validated() {
    let mut req = random_request(3);
    req.deadline_ms = Some(wire::MAX_DEADLINE_MS);
    assert_eq!(JobRequest::decode(&req.encode()), Ok(req.clone()));
    // Zero and beyond-cap deadlines are rejected at decode time.
    for bad in [0u32, wire::MAX_DEADLINE_MS + 1] {
        req.deadline_ms = Some(bad);
        assert!(JobRequest::decode(&req.encode()).is_err());
    }
}
