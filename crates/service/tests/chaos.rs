//! The chaos property suite: under any chaos seed the whole stack —
//! retrying client → seeded byte-fault proxy → deadline'd TCP front →
//! supervised service — never panics and never hangs, every verdict that
//! does get delivered is bit-identical to a direct engine run, and
//! replaying the same seed reproduces the identical outcome, retry, and
//! shed accounting.

use proptest::prelude::*;
use rpls_bits::BitString;
use rpls_core::engine::{MessagePattern, SeedSource};
use rpls_core::stats::{self, EstimateOpts};
use rpls_service::chaos::{ChaosPlan, ChaosProxy};
use rpls_service::client::{self, ClientError, RetryPolicy};
use rpls_service::registry::{self, request_skeleton};
use rpls_service::service::{Service, ServiceStats};
use rpls_service::tcp::{FrontConfig, TcpFront};
use rpls_service::wire::{JobRequest, WireFaults};
use std::sync::Arc;
use std::time::Duration;

/// The job mix a chaos run pushes through the proxy: three small but
/// distinct jobs (different schemes, patterns, seed sources, one with
/// engine-level faults on top of the network-level chaos) plus one
/// deliberate worker-killer.
fn chaos_batch() -> Vec<JobRequest> {
    let mut a = request_skeleton(
        "spanning-tree",
        5,
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
    );
    a.trials = 30;
    a.seed_source = SeedSource::Trial(11);
    a.tenant = "a".into();

    let mut b = request_skeleton("uniformity", 4, &[(0, 1), (1, 2), (2, 3)]);
    b.payload = BitString::from_bools((0..32).map(|i| i % 5 == 0));
    b.trials = 20;
    b.pattern = MessagePattern::Broadcast;
    b.seed_source = SeedSource::Beacon {
        round_id: 7,
        value: 0xABCD,
    };
    b.tenant = "b".into();

    let mut c = request_skeleton("leader", 4, &[(0, 1), (0, 2), (0, 3)]);
    c.trials = 25;
    c.seed_source = SeedSource::Trial(5);
    c.faults = Some(WireFaults {
        drop_rate: 0.15,
        corrupt_rate: 0.05,
        duplicate_rate: 0.0,
        crash_rate: 0.0,
        retry_budget: 1,
        fault_seed: 21,
    });
    c.tenant = "c".into();

    let mut kill = request_skeleton(registry::CRASH_TEST_SCHEME, 3, &[(0, 1), (1, 2)]);
    kill.trials = 2;
    kill.tenant = "k".into();

    vec![a, b, kill, c]
}

/// What one job's journey through the chaos reduced to — everything a
/// replay must reproduce exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    /// Delivered verdict (engine fields only; cache counters depend on
    /// retry-induced recomputation, which IS replayed, but they are
    /// compared via the whole-summary equality anyway).
    Delivered {
        trials: u64,
        accepts: u64,
        degraded: u64,
        attempts: u32,
        transport_retries: u32,
        shed_retries: u32,
    },
    Terminal(String),
    Exhausted {
        attempts: u32,
    },
}

/// One full chaos run: fresh service, front, and proxy; the batch pushed
/// through sequentially with deterministic retries.
fn chaos_run(seed: u64) -> (Vec<Outcome>, ServiceStats) {
    let service = Arc::new(Service::spawn());
    let front = TcpFront::spawn_with(
        Arc::clone(&service),
        FrontConfig {
            frame_timeout: Duration::from_millis(300),
            idle_timeout: Some(Duration::from_secs(2)),
        },
    )
    .expect("bind front");
    let plan = ChaosPlan {
        seed,
        drop_rate: 0.0004,
        corrupt_rate: 0.002,
        truncate_rate: 0.001,
        split_rate: 0.02,
        delay_rate: 0.01,
        delay: Duration::from_millis(1),
    };
    let proxy = ChaosProxy::spawn(front.addr(), plan).expect("bind proxy");
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(40),
        io_timeout: Duration::from_millis(500),
        jitter_seed: seed,
    };
    let outcomes = chaos_batch()
        .iter()
        .map(
            |req| match client::submit_with_retry(proxy.addr(), req, &policy) {
                Ok(outcome) => Outcome::Delivered {
                    trials: outcome.response.trials,
                    accepts: outcome.response.accepts,
                    degraded: outcome.response.degraded_trials,
                    attempts: outcome.attempts,
                    transport_retries: outcome.transport_retries,
                    shed_retries: outcome.shed_retries,
                },
                Err(ClientError::Terminal(reason)) => Outcome::Terminal(reason.to_string()),
                Err(ClientError::Exhausted { attempts, .. }) => Outcome::Exhausted { attempts },
            },
        )
        .collect();
    let chaos_stats = proxy.stats();
    proxy.stop();
    front.stop();
    let stats = service.stats();
    // The chaos must actually be doing something at these rates over this
    // much traffic, or the test is vacuous.
    assert!(
        chaos_stats.bytes_seen > 500,
        "batch traffic too small: {chaos_stats:?}"
    );
    drop(service);
    (outcomes, stats)
}

/// Every delivered verdict must be bit-identical to the direct engine run
/// of the same request.
fn assert_delivered_verdicts_exact(outcomes: &[Outcome]) {
    for (req, outcome) in chaos_batch().iter().zip(outcomes) {
        let Outcome::Delivered {
            trials,
            accepts,
            degraded,
            ..
        } = outcome
        else {
            continue;
        };
        let job = registry::build(req).expect("batch jobs resolve");
        let direct = stats::estimate(
            &*job.scheme,
            &job.config,
            &job.labeling,
            &req.run_spec(),
            &EstimateOpts::new(req.trials as usize),
        );
        assert_eq!(*trials, direct.trials as u64, "trials for {}", req.scheme);
        assert_eq!(
            *accepts, direct.accepts as u64,
            "accepts for {}",
            req.scheme
        );
        assert_eq!(
            *degraded, direct.degraded_trials as u64,
            "degraded for {}",
            req.scheme
        );
    }
}

/// The crash-test job can only end as retries-exhausted worker faults (or
/// a transport-exhausted attempt mix) — never a delivered verdict.
fn assert_crash_job_never_delivers(outcomes: &[Outcome]) {
    assert!(
        !matches!(outcomes[2], Outcome::Delivered { .. }),
        "the crash-test job cannot produce a verdict: {:?}",
        outcomes[2]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline property, over random chaos seeds.
    #[test]
    fn chaos_is_harmless_deterministic_and_exact(seed in any::<u64>()) {
        let (outcomes, stats) = chaos_run(seed);
        assert_delivered_verdicts_exact(&outcomes);
        assert_crash_job_never_delivers(&outcomes);
        // Worker faults happened (the crash job guarantees at least one
        // attempt reached the worker — unless chaos ate every attempt's
        // request, in which case faults may be 0) and each cost one
        // restart.
        prop_assert_eq!(stats.worker_faults, stats.worker_restarts);
        // Replay: the same seed reproduces everything — outcomes,
        // attempts, retry split, and the service's shed/fault ledger.
        let (replay_outcomes, replay_stats) = chaos_run(seed);
        prop_assert_eq!(outcomes, replay_outcomes);
        prop_assert_eq!(stats, replay_stats);
    }
}

/// A pinned-seed smoke so plain `cargo test` (and the CI hardening job)
/// always exercises one full chaos replay deterministically.
#[test]
fn chaos_pinned_seed_replays_exactly() {
    let (outcomes, stats) = chaos_run(0xC0FFEE);
    assert_delivered_verdicts_exact(&outcomes);
    assert_crash_job_never_delivers(&outcomes);
    let (replay_outcomes, replay_stats) = chaos_run(0xC0FFEE);
    assert_eq!(outcomes, replay_outcomes);
    assert_eq!(stats, replay_stats);
}

/// A transparent proxy (all rates zero) delivers every verdict first try:
/// the harness itself adds no noise.
#[test]
fn transparent_proxy_is_invisible() {
    let service = Arc::new(Service::spawn());
    let front = TcpFront::spawn(Arc::clone(&service)).expect("bind front");
    let plan = ChaosPlan::seeded(123);
    assert!(plan.is_transparent());
    let proxy = ChaosProxy::spawn(front.addr(), plan).expect("bind proxy");
    let policy = RetryPolicy::default();
    for req in chaos_batch() {
        match client::submit_with_retry(proxy.addr(), &req, &policy) {
            Ok(outcome) => {
                assert_eq!(outcome.attempts, 1, "no retries without chaos");
                assert_eq!(outcome.transport_retries, 0);
            }
            Err(ClientError::Exhausted { .. }) if req.scheme == registry::CRASH_TEST_SCHEME => {}
            Err(e) => panic!("clean network must deliver {}: {e}", req.scheme),
        }
    }
    let stats = proxy.stats();
    assert_eq!(stats.bytes_corrupted, 0);
    assert_eq!(stats.bytes_dropped, 0);
    assert_eq!(stats.truncations, 0);
    proxy.stop();
    front.stop();
    drop(service);
}

/// Deterministic jittered backoff: same policy, same pauses; jitter stays
/// inside [50%, 100%] of the exponential envelope.
#[test]
fn backoff_is_deterministic_and_bounded() {
    let policy = RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
        io_timeout: Duration::from_secs(1),
        jitter_seed: 42,
    };
    let twin = policy.clone();
    for attempt in 0..8 {
        let pause = policy.backoff(attempt);
        assert_eq!(pause, twin.backoff(attempt), "same seed, same pause");
        let envelope = Duration::from_millis(10)
            .saturating_mul(1 << attempt)
            .min(Duration::from_millis(200));
        assert!(
            pause <= envelope,
            "attempt {attempt}: {pause:?} > {envelope:?}"
        );
        assert!(
            pause >= envelope / 2,
            "attempt {attempt}: {pause:?} < half of {envelope:?}"
        );
    }
    // A different jitter seed decorrelates the pauses.
    let other = RetryPolicy {
        jitter_seed: 43,
        ..policy
    };
    assert!((0..8).any(|a| other.backoff(a) != twin.backoff(a)));
}
