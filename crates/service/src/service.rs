//! The resident verification engine: one worker thread, a bounded job
//! queue, and one persistent [`PrepCache`] shared across every tenant.
//!
//! # Why one worker thread
//!
//! [`PrepCache`] is deliberately single-threaded (`Rc`-based sharing — the
//! engine's hot path must not pay atomics), so the service gives it a home:
//! a single worker owns the cache and a reusable
//! [`RoundScratch`], and jobs are serialized
//! through a bounded [`std::sync::mpsc::sync_channel`]. Backpressure is
//! explicit: when the queue is full, [`Service::submit`] **sheds** the job
//! with [`ShedReason::QueueFull`] instead of blocking the caller — the
//! tenant decides whether to retry.
//!
//! # Cross-tenant sharing is sound
//!
//! The cache is **content-keyed**: every key is the full content its value
//! is a pure function of (a label's bits, a fingerprinted string plus its
//! modulus), and nothing configuration- or scheme-dependent is ever stored.
//! Tenant A's entries can therefore only ever *accelerate* tenant B's jobs,
//! never change their verdicts — estimates are bit-identical to a private
//! fresh cache per job (`tests/smoke.rs` pins this), and hit rates under a
//! mixed workload are observable through the [`CacheStats`] snapshot every
//! response carries.

use crate::registry;
use crate::wire::{JobReply, JobRequest, JobResponse, ShedReason};
use rpls_core::prep::CacheStats;
use rpls_core::stats::{self, EstimateOpts};
use rpls_core::{PrepCache, RoundScratch};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Default bound on the job queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// One queued job: the request plus the channel its reply goes back on.
struct Envelope {
    req: JobRequest,
    reply: mpsc::Sender<JobReply>,
}

/// A running verification service. Dropping it (or calling
/// [`Service::shutdown`]) drains the queue and stops the worker.
pub struct Service {
    tx: SyncSender<Envelope>,
    handle: Option<JoinHandle<()>>,
    shed: AtomicU64,
    completed: Arc<AtomicU64>,
    cache_stats: Arc<Mutex<CacheStats>>,
}

impl Service {
    /// Spawns a service with the default queue capacity.
    #[must_use]
    pub fn spawn() -> Self {
        Self::with_capacity(DEFAULT_QUEUE_CAPACITY)
    }

    /// Spawns a service whose queue holds at most `capacity` waiting jobs
    /// (the job being executed is not counted).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let (tx, rx) = mpsc::sync_channel::<Envelope>(capacity);
        let completed = Arc::new(AtomicU64::new(0));
        let cache_stats = Arc::new(Mutex::new(CacheStats::default()));
        let worker_completed = Arc::clone(&completed);
        let worker_stats = Arc::clone(&cache_stats);
        let handle = std::thread::spawn(move || worker(rx, &worker_completed, &worker_stats));
        Self {
            tx,
            handle: Some(handle),
            shed: AtomicU64::new(0),
            completed,
            cache_stats,
        }
    }

    /// Submits a job and waits for its reply. Returns
    /// [`JobReply::Shed`]`(`[`ShedReason::QueueFull`]`)` immediately when
    /// the queue is full — submission never blocks on a busy service.
    pub fn submit(&self, req: JobRequest) -> JobReply {
        match self.submit_nowait(req) {
            Ok(rx) => rx.recv().unwrap_or(JobReply::Shed(ShedReason::QueueFull)),
            Err(shed) => JobReply::Shed(shed),
        }
    }

    /// Submits a job without waiting: on success the reply arrives on the
    /// returned channel, on a full queue the shed reason comes back
    /// directly. Lets a tenant pipeline submissions.
    ///
    /// # Errors
    ///
    /// [`ShedReason::QueueFull`] when the bounded queue has no room.
    pub fn submit_nowait(&self, req: JobRequest) -> Result<mpsc::Receiver<JobReply>, ShedReason> {
        let (reply_tx, reply_rx) = mpsc::channel();
        match self.tx.try_send(Envelope {
            req,
            reply: reply_tx,
        }) {
            Ok(()) => Ok(reply_rx),
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                Err(ShedReason::QueueFull)
            }
        }
    }

    /// Jobs shed at the queue (lifetime count).
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Jobs the worker has finished (lifetime count, successful or not).
    #[must_use]
    pub fn completed_count(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// The shared cache's counters as of the most recently completed job.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        *self.cache_stats.lock().expect("cache stats lock")
    }

    /// Stops accepting jobs, drains the queue, and joins the worker.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Replace the sender with a dead one so the worker's receive loop
        // ends once the queue drains.
        let (dead, _) = mpsc::sync_channel(1);
        drop(std::mem::replace(&mut self.tx, dead));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The worker loop: owns the persistent cache and scratch, runs every job
/// in arrival order.
fn worker(rx: Receiver<Envelope>, completed: &AtomicU64, stats_out: &Mutex<CacheStats>) {
    let mut cache = PrepCache::new();
    let mut scratch = RoundScratch::new();
    for Envelope { req, reply } in rx {
        let out = run_job(&req, &mut scratch, &mut cache);
        completed.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut snapshot) = stats_out.lock() {
            *snapshot = cache.stats();
        }
        // A tenant that hung up just doesn't get its reply.
        let _ = reply.send(out);
    }
}

/// Runs one job against the shared cache: resolve through the registry,
/// estimate through the one-surface [`stats::estimate_with`], snapshot the
/// cache counters into the response.
fn run_job(req: &JobRequest, scratch: &mut RoundScratch, cache: &mut PrepCache) -> JobReply {
    let job = match registry::build(req) {
        Ok(job) => job,
        Err(reason) => return JobReply::Shed(reason),
    };
    let spec = req.run_spec();
    let est = stats::estimate_with(
        &*job.scheme,
        &job.config,
        &job.labeling,
        &spec,
        &EstimateOpts::new(req.trials as usize),
        scratch,
        cache,
    );
    JobReply::Ok(JobResponse {
        trials: est.trials as u64,
        accepts: est.accepts as u64,
        degraded_trials: est.degraded_trials as u64,
        missing_messages: est.missing_messages as u64,
        dropped: est.counts.dropped as u64,
        corrupted: est.counts.corrupted as u64,
        duplicated: est.counts.duplicated as u64,
        crashed_nodes: est.counts.crashed_nodes as u64,
        retries: est.counts.retries as u64,
        cache: cache.stats(),
    })
}
