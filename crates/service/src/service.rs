//! The resident verification engine: a supervised worker, a fair bounded
//! job queue, and one persistent [`PrepCache`] shared across every tenant.
//!
//! # Why one worker thread
//!
//! [`PrepCache`] is deliberately single-threaded (`Rc`-based sharing — the
//! engine's hot path must not pay atomics), so the service gives it a home:
//! a single worker owns the cache and a reusable [`RoundScratch`], and jobs
//! serialize through a bounded queue. Backpressure is explicit: when the
//! queue has no fair room, [`Service::submit`] **sheds** the job with
//! [`ShedReason::QueueFull`] instead of blocking the caller — the tenant
//! decides whether to retry.
//!
//! # Supervision: a panic costs one job, never the service
//!
//! The worker runs every job under
//! [`std::panic::catch_unwind`]. If a job panics, exactly
//! that job is answered with [`ShedReason::WorkerFault`]; the worker
//! thread is then allowed to die and a supervisor loop respawns it with a
//! **fresh** [`PrepCache`] and scratch (a panic may have left them
//! half-updated, and a fresh thread also sheds any poisoned thread-local
//! state). Restart and fault counters are visible through
//! [`Service::stats`]. A dead worker can also never masquerade as
//! backpressure: a reply channel that drops without a reply surfaces as
//! [`ShedReason::WorkerFault`], not `QueueFull`.
//!
//! # Fair shedding and per-tenant quotas
//!
//! Every job carries an opaque tenant key ([`JobRequest::tenant`]); the
//! queue tracks in-flight (queued + executing) jobs per key. When the
//! bounded queue is full and a new job arrives, the queue sheds **the
//! heaviest tenant first**: if some queued tenant holds strictly more
//! in-flight jobs than the newcomer's tenant, that tenant's newest queued
//! job is evicted (answered `QueueFull`) to admit the newcomer; otherwise
//! the newcomer itself is shed. A single noisy tenant therefore converges
//! to at most `capacity` queue slots *minus* whatever lighter tenants ask
//! for — it can saturate an idle queue but never starve an active one. An
//! optional hard quota ([`ServiceConfig::tenant_quota`]) additionally caps
//! any one tenant's in-flight jobs outright.
//!
//! # Deadlines
//!
//! A job may carry a deadline ([`JobRequest::deadline_ms`], or
//! [`ServiceConfig::default_deadline`] when it doesn't). The deadline is
//! checked when the worker *dequeues* the job: a job whose deadline passed
//! while it waited is shed with [`ShedReason::DeadlineExceeded`] instead
//! of burning worker time on a verdict nobody is waiting for.
//!
//! # Cross-tenant sharing is sound
//!
//! The cache is **content-keyed**: every key is the full content its value
//! is a pure function of (a label's bits, a fingerprinted string plus its
//! modulus), and nothing configuration- or scheme-dependent is ever stored.
//! Tenant A's entries can therefore only ever *accelerate* tenant B's jobs,
//! never change their verdicts — estimates are bit-identical to a private
//! fresh cache per job (`tests/smoke.rs` pins this), and hit rates under a
//! mixed workload are observable through the [`CacheStats`] snapshot every
//! response carries.

use crate::registry;
use crate::wire::{JobReply, JobRequest, JobResponse, ShedReason};
use rpls_core::prep::CacheStats;
use rpls_core::stats::{self, EstimateOpts};
use rpls_core::{PrepCache, RoundScratch};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound on the job queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Tuning knobs for a [`Service`]. The defaults reproduce the historical
/// behavior: a [`DEFAULT_QUEUE_CAPACITY`]-slot queue, no per-tenant quota,
/// no implicit deadline.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum number of *waiting* jobs (the executing job is not
    /// counted). Clamped to at least 1.
    pub queue_capacity: usize,
    /// Hard cap on any one tenant's in-flight (queued + executing) jobs;
    /// submissions beyond it are shed with [`ShedReason::QueueFull`].
    /// `None` disables the cap (fair shedding still applies).
    pub tenant_quota: Option<usize>,
    /// Deadline applied to jobs that carry none of their own.
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            tenant_quota: None,
            default_deadline: None,
        }
    }
}

/// A lifetime snapshot of a service's shed/fault accounting — the ledger
/// that makes "reject with a reason, never hang" auditable. Every job
/// submitted to a service ends up in exactly one bucket: `completed`
/// (worker replied — verdict, deadline shed, or fault shed), `queue_sheds`
/// (refused at submission), or `evictions` (admitted, then shed in favor
/// of a lighter tenant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Jobs the worker disposed of (verdict computed, or shed at the
    /// worker with `DeadlineExceeded`/`WorkerFault`).
    pub completed: u64,
    /// Jobs refused at submission time (queue full or quota), including
    /// `quota_sheds`.
    pub queue_sheds: u64,
    /// Of `queue_sheds`, those refused by the per-tenant quota.
    pub quota_sheds: u64,
    /// Queued jobs shed to admit a lighter tenant's job.
    pub evictions: u64,
    /// Jobs shed at dequeue because their deadline had passed.
    pub deadline_sheds: u64,
    /// Jobs lost to a worker panic (each answered `WorkerFault`).
    pub worker_faults: u64,
    /// Fresh workers spawned by the supervisor after a panic.
    pub worker_restarts: u64,
}

/// One queued job: the request, the channel its reply goes back on, and
/// its (absolute) deadline.
struct Envelope {
    req: JobRequest,
    reply: mpsc::Sender<JobReply>,
    expires: Option<Instant>,
}

/// Queue state under the mutex: the waiting jobs, the per-tenant
/// in-flight ledger, and the shutdown latch.
#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Envelope>,
    /// In-flight (queued + executing) jobs per tenant key. Entries are
    /// removed when they reach zero, so the map's size is bounded by the
    /// number of *active* tenants, not of all tenants ever seen.
    inflight: HashMap<String, usize>,
    closed: bool,
}

/// Everything the submitters, the worker, and the supervisor share.
struct Shared {
    queue: Mutex<QueueState>,
    avail: Condvar,
    capacity: usize,
    tenant_quota: Option<usize>,
    completed: AtomicU64,
    queue_sheds: AtomicU64,
    quota_sheds: AtomicU64,
    evictions: AtomicU64,
    deadline_sheds: AtomicU64,
    worker_faults: AtomicU64,
    worker_restarts: AtomicU64,
    cache_stats: Mutex<CacheStats>,
}

impl Shared {
    /// Locks the queue, recovering from poisoning: the state under the
    /// mutex is only ever touched between jobs, never across an unwind,
    /// so a poisoned lock carries no torn state.
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Drops one job from `tenant`'s in-flight count.
    fn release_tenant(&self, state: &mut QueueState, tenant: &str) {
        if let Some(count) = state.inflight.get_mut(tenant) {
            *count -= 1;
            if *count == 0 {
                state.inflight.remove(tenant);
            }
        }
    }
}

/// A running verification service. Dropping it (or calling
/// [`Service::shutdown`]) drains the queue and stops the worker.
pub struct Service {
    shared: Arc<Shared>,
    default_deadline: Option<Duration>,
    handle: Option<JoinHandle<()>>,
}

impl Service {
    /// Spawns a service with the default configuration.
    #[must_use]
    pub fn spawn() -> Self {
        Self::with_config(ServiceConfig::default())
    }

    /// Spawns a service whose queue holds at most `capacity` waiting jobs
    /// (the job being executed is not counted).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_config(ServiceConfig {
            queue_capacity: capacity,
            ..ServiceConfig::default()
        })
    }

    /// Spawns a service with explicit [`ServiceConfig`] knobs.
    #[must_use]
    pub fn with_config(config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            avail: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            tenant_quota: config.tenant_quota,
            completed: AtomicU64::new(0),
            queue_sheds: AtomicU64::new(0),
            quota_sheds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            deadline_sheds: AtomicU64::new(0),
            worker_faults: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            cache_stats: Mutex::new(CacheStats::default()),
        });
        let supervisor_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("rpls-service-supervisor".into())
            .spawn(move || supervisor(&supervisor_shared))
            .expect("spawn service supervisor");
        Self {
            shared,
            default_deadline: config.default_deadline,
            handle: Some(handle),
        }
    }

    /// Submits a job and waits for its reply. Sheds immediately (with
    /// [`ShedReason::QueueFull`]) when the queue has no fair room —
    /// submission never blocks on a busy service. If the worker dies
    /// without replying (a bug by construction — the supervisor answers
    /// every job), the failure surfaces as [`ShedReason::WorkerFault`],
    /// never as a phantom full queue.
    pub fn submit(&self, req: JobRequest) -> JobReply {
        match self.submit_nowait(req) {
            Ok(rx) => rx.recv().unwrap_or(JobReply::Shed(ShedReason::WorkerFault)),
            Err(shed) => JobReply::Shed(shed),
        }
    }

    /// Submits a job without waiting: on success the reply arrives on the
    /// returned channel, on a shed the reason comes back directly. Lets a
    /// tenant pipeline submissions. A queued job can still be answered
    /// `QueueFull` later (fair-shedding eviction) or
    /// `DeadlineExceeded` at dequeue — the channel always gets exactly
    /// one reply.
    ///
    /// # Errors
    ///
    /// [`ShedReason::QueueFull`] when the bounded queue has no fair room
    /// for this tenant (full queue, quota, or a heavier-tenant check).
    pub fn submit_nowait(&self, req: JobRequest) -> Result<mpsc::Receiver<JobReply>, ShedReason> {
        let expires = req
            .deadline_ms
            .map(|ms| Duration::from_millis(u64::from(ms)))
            .or(self.default_deadline)
            .map(|d| Instant::now() + d);
        let (reply_tx, reply_rx) = mpsc::channel();
        let tenant = req.tenant.clone();
        let mut state = self.shared.lock_queue();
        if state.closed {
            self.shared.queue_sheds.fetch_add(1, Ordering::Relaxed);
            return Err(ShedReason::QueueFull);
        }
        let mine = state.inflight.get(&tenant).copied().unwrap_or(0);
        if let Some(quota) = self.shared.tenant_quota {
            if mine >= quota {
                self.shared.quota_sheds.fetch_add(1, Ordering::Relaxed);
                self.shared.queue_sheds.fetch_add(1, Ordering::Relaxed);
                return Err(ShedReason::QueueFull);
            }
        }
        if state.jobs.len() >= self.shared.capacity {
            // Fair shedding: find the queued job whose tenant is heaviest
            // (ties break to the newest entry, preserving FIFO order for
            // the rest of that tenant's work). Only a *strictly* heavier
            // tenant is evicted — a tenant never gains queue room by
            // racing itself.
            let victim = state
                .jobs
                .iter()
                .enumerate()
                .map(|(at, env)| {
                    (
                        at,
                        state.inflight.get(&env.req.tenant).copied().unwrap_or(0),
                    )
                })
                .max_by_key(|&(_, weight)| weight)
                .expect("full queue is non-empty");
            let (at, weight) = victim;
            if weight <= mine {
                self.shared.queue_sheds.fetch_add(1, Ordering::Relaxed);
                return Err(ShedReason::QueueFull);
            }
            let evicted = state.jobs.remove(at).expect("victim index in bounds");
            self.shared.release_tenant(&mut state, &evicted.req.tenant);
            self.shared.evictions.fetch_add(1, Ordering::Relaxed);
            let _ = evicted.reply.send(JobReply::Shed(ShedReason::QueueFull));
        }
        *state.inflight.entry(tenant).or_insert(0) += 1;
        state.jobs.push_back(Envelope {
            req,
            reply: reply_tx,
            expires,
        });
        drop(state);
        self.shared.avail.notify_one();
        Ok(reply_rx)
    }

    /// Jobs currently waiting in the queue (the job being executed, if
    /// any, is not counted). A snapshot — mainly for tests and
    /// observability.
    #[must_use]
    pub fn queued_count(&self) -> usize {
        self.shared.lock_queue().jobs.len()
    }

    /// Jobs shed at the queue — submission-time refusals plus
    /// fair-shedding evictions (lifetime count).
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.shared.queue_sheds.load(Ordering::Relaxed)
            + self.shared.evictions.load(Ordering::Relaxed)
    }

    /// Jobs the worker has disposed of (lifetime count: verdicts plus
    /// worker-side sheds).
    #[must_use]
    pub fn completed_count(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// The full shed/fault ledger.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            completed: self.shared.completed.load(Ordering::Relaxed),
            queue_sheds: self.shared.queue_sheds.load(Ordering::Relaxed),
            quota_sheds: self.shared.quota_sheds.load(Ordering::Relaxed),
            evictions: self.shared.evictions.load(Ordering::Relaxed),
            deadline_sheds: self.shared.deadline_sheds.load(Ordering::Relaxed),
            worker_faults: self.shared.worker_faults.load(Ordering::Relaxed),
            worker_restarts: self.shared.worker_restarts.load(Ordering::Relaxed),
        }
    }

    /// The shared cache's counters as of the most recently completed job.
    /// A worker respawn starts a fresh cache, so these reset after a
    /// fault — by design: they describe the cache that will serve the
    /// *next* job.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        *self
            .shared
            .cache_stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Stops accepting jobs, drains the queue, and joins the worker.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut state = self.shared.lock_queue();
            state.closed = true;
        }
        self.shared.avail.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The supervisor loop: keeps exactly one worker alive until the queue is
/// closed and drained. A worker that returns cleanly means shutdown; a
/// worker that panicked already answered its poisoned job with
/// [`ShedReason::WorkerFault`], so the supervisor just respawns a fresh
/// one — new thread, new [`PrepCache`], new scratch.
fn supervisor(shared: &Arc<Shared>) {
    loop {
        let worker_shared = Arc::clone(shared);
        let worker = std::thread::Builder::new()
            .name("rpls-service-worker".into())
            .spawn(move || worker_epoch(&worker_shared))
            .expect("spawn service worker");
        if worker.join().is_ok() {
            return;
        }
        shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
    }
}

/// Blocks until a job is available or the queue is closed and empty.
fn next_envelope(shared: &Shared) -> Option<Envelope> {
    let mut state = shared.lock_queue();
    loop {
        if let Some(env) = state.jobs.pop_front() {
            return Some(env);
        }
        if state.closed {
            return None;
        }
        state = shared.avail.wait(state).unwrap_or_else(|e| e.into_inner());
    }
}

/// One worker's lifetime: owns a fresh cache and scratch, runs jobs in
/// arrival order until the queue closes — or until a job panics, in which
/// case the job is answered [`ShedReason::WorkerFault`] and the panic is
/// resumed so the supervisor can replace this worker wholesale.
fn worker_epoch(shared: &Shared) {
    let mut cache = PrepCache::new();
    let mut scratch = RoundScratch::new();
    while let Some(Envelope {
        req,
        reply,
        expires,
    }) = next_envelope(shared)
    {
        if expires.is_some_and(|at| Instant::now() >= at) {
            shared.deadline_sheds.fetch_add(1, Ordering::Relaxed);
            finish(shared, &req.tenant);
            let _ = reply.send(JobReply::Shed(ShedReason::DeadlineExceeded));
            continue;
        }
        match catch_unwind(AssertUnwindSafe(|| run_job(&req, &mut scratch, &mut cache))) {
            Ok(out) => {
                if let Ok(mut snapshot) = shared.cache_stats.lock() {
                    *snapshot = cache.stats();
                }
                finish(shared, &req.tenant);
                // A tenant that hung up just doesn't get its reply.
                let _ = reply.send(out);
            }
            Err(payload) => {
                shared.worker_faults.fetch_add(1, Ordering::Relaxed);
                finish(shared, &req.tenant);
                let _ = reply.send(JobReply::Shed(ShedReason::WorkerFault));
                // The cache and scratch may be half-updated; die and let
                // the supervisor respawn a clean worker.
                resume_unwind(payload);
            }
        }
    }
}

/// Books one job out of the in-flight ledger and into `completed`.
fn finish(shared: &Shared, tenant: &str) {
    shared.completed.fetch_add(1, Ordering::Relaxed);
    let mut state = shared.lock_queue();
    shared.release_tenant(&mut state, tenant);
}

/// Runs one job against the shared cache: resolve through the registry,
/// estimate through the one-surface [`stats::estimate_with`], snapshot the
/// cache counters into the response.
fn run_job(req: &JobRequest, scratch: &mut RoundScratch, cache: &mut PrepCache) -> JobReply {
    let job = match registry::build(req) {
        Ok(job) => job,
        Err(reason) => return JobReply::Shed(reason),
    };
    let spec = req.run_spec();
    let est = stats::estimate_with(
        &*job.scheme,
        &job.config,
        &job.labeling,
        &spec,
        &EstimateOpts::new(req.trials as usize),
        scratch,
        cache,
    );
    JobReply::Ok(JobResponse {
        trials: est.trials as u64,
        accepts: est.accepts as u64,
        degraded_trials: est.degraded_trials as u64,
        missing_messages: est.missing_messages as u64,
        dropped: est.counts.dropped as u64,
        corrupted: est.counts.corrupted as u64,
        duplicated: est.counts.duplicated as u64,
        crashed_nodes: est.counts.crashed_nodes as u64,
        retries: est.counts.retries as u64,
        cache: cache.stats(),
    })
}
