//! A minimal TCP front for the service: one listener thread, frame-per-job
//! connections.
//!
//! Each connection carries any number of request frames (see
//! [`wire`]); every frame gets exactly one reply frame — the
//! job's estimate, or the shed reason (including
//! [`ShedReason::Malformed`] for bytes
//! that don't decode, so a confused client hears *why* instead of a closed
//! socket). The front is intentionally sequential: jobs serialize through
//! the service's single worker anyway, so per-connection threads would buy
//! nothing but nondeterminism.

use crate::service::Service;
use crate::wire::{self, JobReply, JobRequest, ShedReason};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running TCP front. Stop it with [`TcpFront::stop`]; dropping without
/// stopping leaves the listener thread running until the process exits.
pub struct TcpFront {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TcpFront {
    /// Binds `127.0.0.1:0` (an OS-assigned port — read it back with
    /// [`TcpFront::addr`]) and serves `service` until stopped.
    ///
    /// # Errors
    ///
    /// Propagates listener binding failures.
    pub fn spawn(service: Arc<Service>) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || accept_loop(&listener, &service, &stop_flag));
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the front is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the listener thread. Connections
    /// already being served finish their current frame.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Polling accept loop; non-blocking so the stop flag is honored promptly.
fn accept_loop(listener: &TcpListener, service: &Service, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Served connections run blocking reads again.
                if stream.set_nonblocking(false).is_ok() {
                    serve_connection(stream, service);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Serves one connection: request frame in, reply frame out, until EOF or
/// an unwritable socket.
fn serve_connection(mut stream: TcpStream, service: &Service) {
    loop {
        let payload = match wire::read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return, // EOF or a broken frame header: hang up.
        };
        let reply = match JobRequest::decode(&payload) {
            Ok(req) => service.submit(req),
            Err(e) => JobReply::Shed(ShedReason::Malformed(e.to_string())),
        };
        if wire::write_frame(&mut stream, &reply.encode()).is_err() {
            return;
        }
    }
}
