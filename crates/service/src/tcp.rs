//! The TCP front for the service: one listener thread, a handler thread
//! per connection, frame deadlines on every read and write.
//!
//! Each connection carries any number of request frames (see [`wire`]);
//! every frame gets exactly one reply frame — the job's estimate, or the
//! shed reason (including [`ShedReason::Malformed`] for bytes that don't
//! decode, so a confused client hears *why* instead of a closed socket).
//! Replies answer in the flavor they were asked in: a checksummed request
//! frame gets a checksummed reply frame.
//!
//! # Deadlines: a slow client costs a timeout, never the service
//!
//! Connections are served on their own threads, so a slowloris — a client
//! trickling a frame one byte at a time — can no longer wedge the accept
//! loop. It cannot wedge its own handler either: from the moment a
//! frame's first byte arrives, the whole frame must land within
//! [`FrontConfig::frame_timeout`] or the connection is dropped, and the
//! reply write runs under the same budget. Waiting *between* frames is
//! governed separately by [`FrontConfig::idle_timeout`] (unlimited by
//! default — an idle connection parks cheaply on a poll loop).
//!
//! # Stop drains
//!
//! [`TcpFront::stop`] closes the accept loop, then joins every live
//! connection handler. Handlers observe the stop flag only while idle
//! between frames, so a frame already in flight is read, served, and
//! answered before its connection closes — bounded by `frame_timeout`,
//! never abandoned mid-frame.

use crate::service::Service;
use crate::wire::{self, JobReply, JobRequest, ShedReason};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The read-poll slice: how often a blocked read re-checks its deadline
/// (and, while idle, the stop flag).
const POLL_SLICE: Duration = Duration::from_millis(20);

/// Deadline knobs for the TCP front.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Budget for one whole frame, counted from its first byte: header,
    /// payload, and the reply write each complete within this or the
    /// connection is dropped. Clamped to at least 1ms.
    pub frame_timeout: Duration,
    /// How long a connection may sit idle between frames before the front
    /// hangs up. `None` (the default) means idle connections are kept
    /// until the client leaves or the front stops.
    pub idle_timeout: Option<Duration>,
}

impl Default for FrontConfig {
    fn default() -> Self {
        Self {
            frame_timeout: Duration::from_secs(5),
            idle_timeout: None,
        }
    }
}

/// A running TCP front. Stop it with [`TcpFront::stop`]; dropping without
/// stopping leaves the listener thread running until the process exits.
pub struct TcpFront {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TcpFront {
    /// Binds `127.0.0.1:0` (an OS-assigned port — read it back with
    /// [`TcpFront::addr`]) and serves `service` with default
    /// [`FrontConfig`] deadlines until stopped.
    ///
    /// # Errors
    ///
    /// Propagates listener binding failures.
    pub fn spawn(service: Arc<Service>) -> io::Result<Self> {
        Self::spawn_with(service, FrontConfig::default())
    }

    /// Like [`TcpFront::spawn`] with explicit deadline knobs.
    ///
    /// # Errors
    ///
    /// Propagates listener binding failures.
    pub fn spawn_with(service: Arc<Service>, config: FrontConfig) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("rpls-tcp-accept".into())
            .spawn(move || accept_loop(&listener, &service, &config, &stop_flag))
            .expect("spawn tcp accept loop");
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the front is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and drains: every connection finishes (and
    /// answers) the frame it is currently reading, then closes. Returns
    /// once all handlers have exited.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Polling accept loop; non-blocking so the stop flag is honored promptly.
/// Spawns a handler thread per connection and joins them all on the way
/// out — stop means drain, not abandon.
fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    config: &FrontConfig,
    stop: &Arc<AtomicBool>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Served connections run poll-sliced blocking reads.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let service = Arc::clone(service);
                let config = config.clone();
                let stop = Arc::clone(stop);
                let spawned = std::thread::Builder::new()
                    .name("rpls-tcp-conn".into())
                    .spawn(move || serve_connection(stream, &service, &config, &stop));
                if let Ok(handle) = spawned {
                    handlers.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                handlers.retain(|h| !h.is_finished());
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Serves one connection: request frame in, reply frame out (in the same
/// frame flavor), until EOF, stop-while-idle, a missed deadline, or an
/// unwritable socket.
fn serve_connection(
    mut stream: TcpStream,
    service: &Service,
    config: &FrontConfig,
    stop: &AtomicBool,
) {
    if stream.set_read_timeout(Some(POLL_SLICE)).is_err() {
        return;
    }
    if stream
        .set_write_timeout(Some(config.frame_timeout.max(Duration::from_millis(1))))
        .is_err()
    {
        return;
    }
    loop {
        let (payload, checked) = match read_frame_deadline(&mut stream, config, stop) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        let reply = match JobRequest::decode(&payload) {
            Ok(req) => service.submit(req),
            Err(e) => JobReply::Shed(ShedReason::Malformed(e.to_string())),
        };
        let bytes = reply.encode();
        let written = if checked {
            wire::write_frame_checked(&mut stream, &bytes)
        } else {
            wire::write_frame(&mut stream, &bytes)
        };
        if written.is_err() {
            return;
        }
    }
}

/// Reads one frame (either flavor) with slowloris-proof deadlines:
/// unlimited (or `idle_timeout`-bounded) patience while waiting for a
/// frame to *start*, a hard `frame_timeout` once its first byte arrives.
/// `Ok(None)` is the clean between-frames exit: EOF, stop, or idle
/// timeout.
fn read_frame_deadline(
    stream: &mut TcpStream,
    config: &FrontConfig,
    stop: &AtomicBool,
) -> io::Result<Option<(Vec<u8>, bool)>> {
    let mut header = [0u8; 4];
    let idle_deadline = config.idle_timeout.map(|d| Instant::now() + d);
    let mut got = 0usize;
    while got == 0 {
        if stop.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match stream.read(&mut header) {
            Ok(0) => return Ok(None),
            Ok(n) => got = n,
            Err(e) if poll_expired(&e) => {
                if idle_deadline.is_some_and(|at| Instant::now() >= at) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // The frame has started: everything below runs against one deadline,
    // and the stop flag is deliberately ignored — stop drains in-flight
    // frames, and this bound caps how long the drain can take.
    let deadline = Instant::now() + config.frame_timeout.max(Duration::from_millis(1));
    read_full(stream, &mut header[got..], deadline)?;
    let (len, checked) = wire::frame_header(u32::from_le_bytes(header))?;
    let expect = if checked {
        let mut sum = [0u8; 8];
        read_full(stream, &mut sum, deadline)?;
        Some(u64::from_le_bytes(sum))
    } else {
        None
    };
    let mut payload = vec![0u8; len];
    read_full(stream, &mut payload, deadline)?;
    if let Some(expect) = expect {
        if wire::frame_checksum(&payload) != expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame checksum mismatch",
            ));
        }
    }
    Ok(Some((payload, checked)))
}

/// Fills `buf` completely or fails: poll-sliced reads against an absolute
/// deadline, so even a one-byte-per-slice trickle cannot stretch a frame
/// past its budget.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], deadline: Instant) -> io::Result<()> {
    let mut got = 0usize;
    while got < buf.len() {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "frame deadline exceeded",
            ));
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => got += n,
            Err(e) if poll_expired(&e) || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Whether an error is the read-timeout poll slice expiring (reported as
/// `WouldBlock` or `TimedOut` depending on the platform).
fn poll_expired(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
