//! A deadline-aware TCP client with deterministic retries.
//!
//! [`submit_with_retry`] speaks checksummed frames (so transport
//! corruption surfaces as a retryable I/O failure, never as a silently
//! different request), puts an I/O timeout on every socket operation, and
//! retries **only** what retrying can fix:
//!
//! * transport failures — connect errors, timeouts, hangups, checksum
//!   mismatches, undecodable replies — and
//! * retryable sheds ([`ShedReason::is_retryable`]: `QueueFull`,
//!   `WorkerFault`),
//!
//! never terminal sheds (`BadJob`, `Malformed`, `UnknownScheme`,
//! `DeadlineExceeded`) — resubmitting a rejected job reproduces the
//! rejection, so the client reports it instead
//! ([`ClientError::Terminal`]).
//!
//! Backoff between attempts is exponential with deterministic jitter: the
//! pause before retry `k` is `base · 2ᵏ` (capped) scaled into
//! `[50%, 100%]` by a SplitMix64 word derived from
//! [`RetryPolicy::jitter_seed`] — the same counter-stream recipe as the
//! engine's fault plans, so a chaos experiment replays its exact timing
//! decisions from its seeds.

use crate::wire::{self, JobReply, JobRequest, JobResponse, ShedReason};
use rpls_core::rng::{mix_seed, state_stream_word};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Retry/deadline knobs for [`submit_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Clamped to at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_backoff: Duration,
    /// Cap on any single backoff pause.
    pub max_backoff: Duration,
    /// Budget for each socket operation (connect, and the whole
    /// request-to-reply exchange).
    pub io_timeout: Duration,
    /// Seed of the jitter stream; same seed, same pauses.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            io_timeout: Duration::from_secs(5),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The jittered pause before retry `attempt` (0-based): `base · 2^attempt`,
    /// capped at [`RetryPolicy::max_backoff`], scaled by a deterministic
    /// factor in `[0.5, 1.0]`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_backoff);
        let word = state_stream_word(mix_seed(self.jitter_seed, u64::from(attempt), 0), 0);
        // Map the word's top 53 bits to [0.5, 1.0).
        let unit = (word >> 11) as f64 / 9_007_199_254_740_992.0;
        exp.mul_f64(0.5 + 0.5 * unit)
    }
}

/// Why [`submit_with_retry`] gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The service shed the job for a reason retrying cannot fix.
    Terminal(ShedReason),
    /// Every attempt failed retryably; `last` describes the final one.
    Exhausted {
        /// Attempts made (equals the policy's `max_attempts`).
        attempts: u32,
        /// Human-readable description of the last failure.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Terminal(reason) => write!(f, "terminal shed: {reason}"),
            Self::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// What a successful [`submit_with_retry`] took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryOutcome {
    /// The verdict.
    pub response: JobResponse,
    /// Attempts made, first try included (1 = clean first exchange).
    pub attempts: u32,
    /// Of the failed attempts, how many failed at the transport layer.
    pub transport_retries: u32,
    /// Of the failed attempts, how many were retryable sheds.
    pub shed_retries: u32,
}

/// Submits `req` to the front at `addr`, retrying per `policy`. Every
/// attempt is a fresh connection carrying one checksummed request frame.
///
/// # Errors
///
/// [`ClientError::Terminal`] on a non-retryable shed;
/// [`ClientError::Exhausted`] when `max_attempts` attempts all failed
/// retryably.
pub fn submit_with_retry(
    addr: SocketAddr,
    req: &JobRequest,
    policy: &RetryPolicy,
) -> Result<RetryOutcome, ClientError> {
    let max_attempts = policy.max_attempts.max(1);
    let payload = req.encode();
    let mut transport_retries = 0u32;
    let mut shed_retries = 0u32;
    let mut last = String::new();
    for attempt in 0..max_attempts {
        if attempt > 0 {
            std::thread::sleep(policy.backoff(attempt - 1));
        }
        match exchange(addr, &payload, policy.io_timeout) {
            Ok(JobReply::Ok(response)) => {
                return Ok(RetryOutcome {
                    response,
                    attempts: attempt + 1,
                    transport_retries,
                    shed_retries,
                })
            }
            Ok(JobReply::Shed(reason)) if reason.is_retryable() => {
                shed_retries += 1;
                last = format!("shed: {reason}");
            }
            Ok(JobReply::Shed(reason)) => return Err(ClientError::Terminal(reason)),
            Err(e) => {
                transport_retries += 1;
                last = format!("transport: {e}");
            }
        }
    }
    Err(ClientError::Exhausted {
        attempts: max_attempts,
        last,
    })
}

/// One attempt: connect, send the checksummed request frame, read and
/// decode the reply frame, all under `io_timeout`.
fn exchange(addr: SocketAddr, payload: &[u8], io_timeout: Duration) -> io::Result<JobReply> {
    let timeout = io_timeout.max(Duration::from_millis(1));
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(Duration::from_millis(20)))?;
    stream.set_write_timeout(Some(timeout))?;
    wire::write_frame_checked(&mut stream, payload)?;
    let deadline = Instant::now() + timeout;
    let reply = read_frame_deadline(&mut stream, deadline)?;
    JobReply::decode(&reply)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad reply frame: {e}")))
}

/// Reads one reply frame (either flavor, checksum verified when present)
/// against an absolute deadline, polling in short slices.
fn read_frame_deadline(stream: &mut TcpStream, deadline: Instant) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    read_full(stream, &mut header, deadline)?;
    let (len, checked) = wire::frame_header(u32::from_le_bytes(header))?;
    let expect = if checked {
        let mut sum = [0u8; 8];
        read_full(stream, &mut sum, deadline)?;
        Some(u64::from_le_bytes(sum))
    } else {
        None
    };
    let mut payload = vec![0u8; len];
    read_full(stream, &mut payload, deadline)?;
    if let Some(expect) = expect {
        if wire::frame_checksum(&payload) != expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame checksum mismatch",
            ));
        }
    }
    Ok(payload)
}

/// Fills `buf` or fails by `deadline`; poll-sliced like the front's
/// reader so a stalled reply cannot hang the client.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], deadline: Instant) -> io::Result<()> {
    let mut got = 0usize;
    while got < buf.len() {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "reply deadline exceeded",
            ));
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
