//! The scheme registry: from a wire-level [`JobRequest`] to a runnable
//! `(scheme, configuration, labeling)` triple.
//!
//! Tenants name schemes by string; the registry instantiates the compiled
//! (Theorem 3.1) randomized scheme, builds the workload configuration from
//! the submitted graph and the scheme-specific parameters, and either
//! installs the tenant's candidate labeling or asks the honest prover for
//! one. Every way a structurally valid request can still be unrunnable —
//! unknown name, malformed graph, out-of-range parameter, disconnected
//! graph for a scheme whose prover needs connectivity — is reported as a
//! [`ShedReason::BadJob`]-style error instead of a panic, so a hostile
//! tenant cannot take the worker thread down.

use crate::wire::{JobRequest, ShedReason};
use rand::Rng;
use rpls_bits::BitString;
use rpls_core::{CertView, CompiledRpls, Configuration, Labeling, RandView, Rpls};
use rpls_graph::{connectivity, Graph, GraphBuilder, NodeId, Port};
use rpls_schemes::coloring::{greedy_coloring_config, ColoringPls};
use rpls_schemes::leader::{leader_config, LeaderPls};
use rpls_schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
use rpls_schemes::uniformity::{uniform_config, UniformityPls};

/// Names the registry resolves, in registry order.
pub const SCHEME_NAMES: [&str; 4] = ["spanning-tree", "leader", "coloring", "uniformity"];

/// The reserved panic-injection scheme name: a job naming it resolves (so
/// it passes admission) and then panics inside the engine, exercising the
/// service's worker supervision. Deliberately excluded from
/// [`SCHEME_NAMES`] — it is a test fixture, not a scheme.
pub const CRASH_TEST_SCHEME: &str = "__crash-test";

/// The panic-injection fixture behind [`CRASH_TEST_SCHEME`]: labels
/// resolve fine, but any attempt to run a verification round panics. The
/// supervision tests and the chaos bench use it to prove a worker panic
/// costs exactly one job.
struct CrashTestPls;

impl Rpls for CrashTestPls {
    fn name(&self) -> String {
        CRASH_TEST_SCHEME.into()
    }

    fn label(&self, config: &Configuration) -> Labeling {
        Labeling::new(vec![BitString::new(); config.node_count()])
    }

    fn certify(&self, _view: &CertView<'_>, _port: Port, _rng: &mut dyn Rng) -> BitString {
        panic!("injected worker panic ({CRASH_TEST_SCHEME})");
    }

    fn verify(&self, _view: &RandView<'_>) -> bool {
        panic!("injected worker panic ({CRASH_TEST_SCHEME})");
    }
}

/// A runnable job: the scheme, the workload configuration, and the
/// labeling to verify.
pub struct Job {
    /// The compiled randomized scheme.
    pub scheme: Box<dyn Rpls>,
    /// The workload configuration the job verifies against.
    pub config: Configuration,
    /// The labeling under verification (tenant-submitted or honest).
    pub labeling: Labeling,
}

/// Builds the configuration graph a request describes.
fn build_graph(req: &JobRequest) -> Result<Graph, ShedReason> {
    if req.node_count == 0 {
        return Err(ShedReason::BadJob("graph needs at least one node".into()));
    }
    let mut b = GraphBuilder::new(req.node_count as usize);
    for e in &req.edges {
        let result = match e.weight {
            None => b.add_edge(NodeId::new(e.u as usize), NodeId::new(e.v as usize)),
            Some(w) => b.add_weighted_edge(NodeId::new(e.u as usize), NodeId::new(e.v as usize), w),
        };
        result.map_err(|err| ShedReason::BadJob(format!("bad edge: {err}")))?;
    }
    b.finish()
        .map_err(|err| ShedReason::BadJob(format!("bad graph: {err}")))
}

/// Resolves a request into a runnable [`Job`].
///
/// # Errors
///
/// [`ShedReason::UnknownScheme`] for names outside [`SCHEME_NAMES`];
/// [`ShedReason::BadJob`] for anything the named scheme cannot run.
pub fn build(req: &JobRequest) -> Result<Job, ShedReason> {
    let graph = build_graph(req)?;
    let base = match &req.ids {
        None => Configuration::plain(graph),
        Some(ids) => Configuration::with_ids(graph, ids),
    };
    let n = base.node_count();
    let node_param = || {
        let v = req.param as usize;
        if v < n {
            Ok(NodeId::new(v))
        } else {
            Err(ShedReason::BadJob(format!(
                "node parameter {v} out of range for {n} nodes"
            )))
        }
    };
    let (scheme, config): (Box<dyn Rpls>, Configuration) = match req.scheme.as_str() {
        "spanning-tree" => {
            let root = node_param()?;
            if !connectivity::is_connected(base.graph()) {
                return Err(ShedReason::BadJob(
                    "spanning-tree needs a connected graph".into(),
                ));
            }
            (
                Box::new(CompiledRpls::new(SpanningTreePls::new())),
                spanning_tree_config(&base, root),
            )
        }
        "leader" => {
            let leader = node_param()?;
            if !connectivity::is_connected(base.graph()) {
                return Err(ShedReason::BadJob("leader needs a connected graph".into()));
            }
            (
                Box::new(CompiledRpls::new(LeaderPls::new())),
                leader_config(&base, leader),
            )
        }
        "coloring" => (
            Box::new(CompiledRpls::new(ColoringPls::new())),
            greedy_coloring_config(&base),
        ),
        "uniformity" => (
            Box::new(CompiledRpls::new(UniformityPls::new())),
            uniform_config(&base, &req.payload),
        ),
        CRASH_TEST_SCHEME => (Box::new(CrashTestPls), base),
        other => return Err(ShedReason::UnknownScheme(other.to_string())),
    };
    let labeling = match &req.labeling {
        Some(labels) => {
            if labels.len() != n {
                return Err(ShedReason::BadJob(format!(
                    "labeling has {} labels for {n} nodes",
                    labels.len()
                )));
            }
            Labeling::new(labels.clone())
        }
        None => scheme.label(&config),
    };
    Ok(Job {
        scheme,
        config,
        labeling,
    })
}

/// A convenience for tests and benches: the empty-payload/zero-param
/// request skeleton for `scheme` on the graph `(node_count, edges)` —
/// honest labeling, one trial, one round, per-port pattern, clean network,
/// trial seed 0. Callers adjust fields from there.
#[must_use]
pub fn request_skeleton(scheme: &str, node_count: u32, edges: &[(u32, u32)]) -> JobRequest {
    JobRequest {
        scheme: scheme.to_string(),
        node_count,
        edges: edges
            .iter()
            .map(|&(u, v)| crate::wire::WireEdge { u, v, weight: None })
            .collect(),
        ids: None,
        param: 0,
        payload: BitString::new(),
        labeling: None,
        trials: 1,
        rounds: 1,
        pattern: rpls_core::engine::MessagePattern::PerPort,
        stream_mode: rpls_core::engine::StreamMode::EdgeIndependent,
        faults: None,
        seed_source: rpls_core::engine::SeedSource::Trial(0),
        tenant: String::new(),
        deadline_ms: None,
    }
}
