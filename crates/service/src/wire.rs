//! The service's length-prefixed wire format.
//!
//! A connection carries **frames**: a little-endian `u32` header word
//! followed by the payload bytes ([`write_frame`] / [`read_frame`]). Two
//! frame flavors share that header word: a **plain** frame (the word is
//! the payload length) and a **checksummed** frame (the high bit
//! [`FRAME_CHECKED_FLAG`] is set, and an 8-byte FNV-1a checksum of the
//! payload sits between the header and the payload — see
//! [`write_frame_checked`]). [`read_frame_tagged`] auto-detects the
//! flavor, so both coexist on one connection; the checksummed flavor lets
//! a client distinguish *transport corruption* (checksum mismatch — a
//! retryable I/O error) from a genuinely malformed job (a decode error
//! the service answers with [`ShedReason::Malformed`], which is terminal).
//!
//! Every payload opens with the 4-byte magic `b"RPLS"` and a version byte,
//! then a kind byte (request or reply) and the body. All integers are
//! little-endian; rates travel as IEEE-754 bit patterns; bit strings as a
//! bit length plus their canonical zero-padded bytes.
//!
//! The format is **versioned**: encoders emit [`VERSION`], decoders accept
//! every version back to [`MIN_VERSION`]. Version 2 appended the tenant
//! key and the optional per-job deadline to requests (and the
//! `DeadlineExceeded` / `WorkerFault` shed codes to replies); a version-1
//! frame still decodes bit-for-bit, with an empty tenant and no deadline.
//!
//! Decoding is **total**: [`JobRequest::decode`] and [`JobReply::decode`]
//! return a [`WireError`] on any malformed input — truncation, bad magic,
//! unknown tags, out-of-range rates, oversized collections — and never
//! panic, no matter the bytes (`tests/wire.rs` throws adversarial inputs
//! at them). Every field that could make the engine panic (zero trials,
//! zero rounds, non-probability rates, a labeling of the wrong arity) is
//! rejected at decode time instead.

use rpls_bits::BitString;
use rpls_core::engine::{MessagePattern, RunSpec, SeedSource, StreamMode};
use rpls_core::fault::{FaultPlan, FaultSpec};
use rpls_core::prep::CacheStats;
use std::io::{self, Read, Write};

/// Magic bytes opening every payload.
pub const MAGIC: [u8; 4] = *b"RPLS";

/// Wire-format version this crate emits.
pub const VERSION: u8 = 2;

/// Oldest wire-format version this crate still decodes.
pub const MIN_VERSION: u8 = 1;

/// Hard cap on a frame's payload length: 16 MiB. Anything larger is
/// rejected before allocation, so a hostile peer cannot make the service
/// reserve unbounded memory from a 4-byte header.
pub const MAX_FRAME_LEN: u32 = 1 << 24;

/// High bit of the frame header word, marking a **checksummed** frame:
/// the remaining 31 bits are the payload length and an 8-byte FNV-1a
/// checksum of the payload follows the header word. Plain frames (the
/// whole word is the length) never collide with the flag because
/// [`MAX_FRAME_LEN`] keeps legal lengths far below it.
pub const FRAME_CHECKED_FLAG: u32 = 1 << 31;

/// Cap on a request's deadline: one hour, in milliseconds. A deadline is
/// advice about *this* submission, not a calendar entry; anything longer
/// is a client bug and is rejected at decode time.
pub const MAX_DEADLINE_MS: u32 = 3_600_000;

/// Caps on decoded collection sizes, keeping adversarial payloads from
/// turning small frames into large allocations.
const MAX_NODES: u32 = 1 << 20;
const MAX_EDGES: u32 = 1 << 22;
const MAX_BITS: u32 = 1 << 24;
const MAX_NAME: u32 = 1 << 10;

/// Payload kind byte: a job submission.
const KIND_REQUEST: u8 = 0;
/// Payload kind byte: a completed job's estimate.
const KIND_OK: u8 = 1;
/// Payload kind byte: a shed job (rejected with a reason).
const KIND_SHED: u8 = 2;

/// Everything that can go wrong decoding a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    Truncated,
    /// Bytes remained after the last field.
    TrailingBytes,
    /// The payload does not open with [`MAGIC`].
    BadMagic,
    /// The version byte is not [`VERSION`].
    BadVersion(u8),
    /// An enum tag byte has no meaning.
    BadTag(&'static str, u8),
    /// A length or count field exceeds its cap.
    TooLarge(&'static str),
    /// A field is structurally present but semantically invalid.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "payload truncated"),
            Self::TrailingBytes => write!(f, "trailing bytes after payload"),
            Self::BadMagic => write!(f, "bad magic"),
            Self::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            Self::BadTag(what, t) => write!(f, "bad {what} tag {t}"),
            Self::TooLarge(what) => write!(f, "{what} exceeds wire cap"),
            Self::Invalid(what) => write!(f, "invalid {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// An undirected edge of a submitted configuration graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEdge {
    /// One endpoint (node index).
    pub u: u32,
    /// The other endpoint (node index).
    pub v: u32,
    /// Optional edge weight.
    pub weight: Option<u64>,
}

/// The fault environment of a job, as submitted on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireFaults {
    /// Per-message drop probability.
    pub drop_rate: f64,
    /// Per-message corruption probability.
    pub corrupt_rate: f64,
    /// Per-message duplication probability.
    pub duplicate_rate: f64,
    /// Per-(node, round) crash-stop hazard.
    pub crash_rate: f64,
    /// Multiround retry budget per failed chunk.
    pub retry_budget: u32,
    /// Seed of the fault schedule.
    pub fault_seed: u64,
}

impl WireFaults {
    /// The [`FaultPlan`] this wire description denotes.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        let spec = FaultSpec::transparent()
            .with_drop(self.drop_rate)
            .with_corrupt(self.corrupt_rate)
            .with_duplicate(self.duplicate_rate)
            .with_crash(self.crash_rate)
            .with_retry_budget(self.retry_budget as usize);
        FaultPlan::new(spec, self.fault_seed)
    }
}

/// One verification job, fully specified on the wire: the scheme to run,
/// the configuration it runs on, the candidate labeling (or a request for
/// the honest prover's), and the [`RunSpec`] axes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Registry name of the scheme (see
    /// [`registry::build`](crate::registry::build)).
    pub scheme: String,
    /// Node count of the configuration graph.
    pub node_count: u32,
    /// Edges of the configuration graph.
    pub edges: Vec<WireEdge>,
    /// Explicit node identities (one per node), or `None` for the default
    /// `0..n` identities.
    pub ids: Option<Vec<u64>>,
    /// Scheme-specific scalar parameter (spanning-tree root, leader index;
    /// ignored by schemes that take none).
    pub param: u64,
    /// Scheme-specific payload (the uniformity payload; ignored by schemes
    /// that take none).
    pub payload: BitString,
    /// The candidate labeling to verify, one label per node — or `None` to
    /// verify the honest prover's labeling.
    pub labeling: Option<Vec<BitString>>,
    /// Monte-Carlo trial count (≥ 1).
    pub trials: u32,
    /// Schedule length `t` (≥ 1).
    pub rounds: u32,
    /// Message pattern certificates are shared under.
    pub pattern: MessagePattern,
    /// How per-port random streams are keyed.
    pub stream_mode: StreamMode,
    /// Fault environment, `None` for a clean network.
    pub faults: Option<WireFaults>,
    /// Private trial seed or public beacon coins.
    pub seed_source: SeedSource,
    /// The submitting tenant's key (empty = the anonymous default
    /// tenant). The service tracks in-flight jobs per tenant key for
    /// quota enforcement and fair shedding; the key is opaque — it
    /// never influences a verdict. Wire version ≥ 2; version-1 frames
    /// decode with an empty key.
    pub tenant: String,
    /// Optional per-job deadline, in milliseconds from submission. A job
    /// still queued when its deadline passes is shed with
    /// [`ShedReason::DeadlineExceeded`] instead of being computed
    /// uselessly. Wire version ≥ 2; version-1 frames decode with `None`.
    pub deadline_ms: Option<u32>,
}

impl JobRequest {
    /// The [`RunSpec`] this job denotes — the exact spec the service
    /// executes, exposed so tests can run the identical job directly
    /// against the engine.
    #[must_use]
    pub fn run_spec(&self) -> RunSpec {
        let mut spec = RunSpec::new(self.seed_source)
            .with_rounds(self.rounds as usize)
            .with_pattern(self.pattern)
            .with_stream_mode(self.stream_mode);
        if let Some(faults) = &self.faults {
            spec = spec.with_faults(faults.plan());
        }
        spec
    }

    /// Encodes the request as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_header(&mut out, KIND_REQUEST);
        put_str(&mut out, &self.scheme);
        put_u32(&mut out, self.node_count);
        put_u32(&mut out, self.edges.len() as u32);
        for e in &self.edges {
            put_u32(&mut out, e.u);
            put_u32(&mut out, e.v);
            match e.weight {
                None => out.push(0),
                Some(w) => {
                    out.push(1);
                    put_u64(&mut out, w);
                }
            }
        }
        match &self.ids {
            None => out.push(0),
            Some(ids) => {
                out.push(1);
                for &id in ids {
                    put_u64(&mut out, id);
                }
            }
        }
        put_u64(&mut out, self.param);
        put_bits(&mut out, &self.payload);
        match &self.labeling {
            None => out.push(0),
            Some(labels) => {
                out.push(1);
                for label in labels {
                    put_bits(&mut out, label);
                }
            }
        }
        put_u32(&mut out, self.trials);
        put_u32(&mut out, self.rounds);
        match self.pattern {
            MessagePattern::PerPort => out.push(0),
            MessagePattern::Broadcast => out.push(1),
            MessagePattern::Unicast => out.push(2),
            MessagePattern::KMessages(k) => {
                out.push(3);
                put_u32(&mut out, k as u32);
            }
        }
        out.push(match self.stream_mode {
            StreamMode::EdgeIndependent => 0,
            StreamMode::SharedPerNode => 1,
        });
        match &self.faults {
            None => out.push(0),
            Some(f) => {
                out.push(1);
                put_u64(&mut out, f.drop_rate.to_bits());
                put_u64(&mut out, f.corrupt_rate.to_bits());
                put_u64(&mut out, f.duplicate_rate.to_bits());
                put_u64(&mut out, f.crash_rate.to_bits());
                put_u32(&mut out, f.retry_budget);
                put_u64(&mut out, f.fault_seed);
            }
        }
        match self.seed_source {
            SeedSource::Trial(seed) => {
                out.push(0);
                put_u64(&mut out, seed);
            }
            SeedSource::Beacon { round_id, value } => {
                out.push(1);
                put_u64(&mut out, round_id);
                put_u64(&mut out, value);
            }
        }
        // Version-2 tail: tenant key + optional deadline.
        put_str(&mut out, &self.tenant);
        match self.deadline_ms {
            None => out.push(0),
            Some(ms) => {
                out.push(1);
                put_u32(&mut out, ms);
            }
        }
        out
    }

    /// Decodes a frame payload. Total: any byte sequence yields `Ok` or a
    /// [`WireError`], never a panic. Accepts every version back to
    /// [`MIN_VERSION`]; fields a version predates decode to their
    /// defaults.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let version = c.header(KIND_REQUEST)?;
        let scheme = c.str(MAX_NAME, "scheme name")?;
        let node_count = c.u32()?;
        if node_count > MAX_NODES {
            return Err(WireError::TooLarge("node count"));
        }
        let edge_count = c.u32()?;
        if edge_count > MAX_EDGES {
            return Err(WireError::TooLarge("edge count"));
        }
        let mut edges = Vec::with_capacity(edge_count.min(1 << 12) as usize);
        for _ in 0..edge_count {
            let u = c.u32()?;
            let v = c.u32()?;
            let weight = match c.u8()? {
                0 => None,
                1 => Some(c.u64()?),
                t => return Err(WireError::BadTag("edge weight", t)),
            };
            if u >= node_count || v >= node_count {
                return Err(WireError::Invalid("edge endpoint"));
            }
            edges.push(WireEdge { u, v, weight });
        }
        let ids = match c.u8()? {
            0 => None,
            1 => {
                let mut ids = Vec::with_capacity(node_count.min(1 << 12) as usize);
                for _ in 0..node_count {
                    ids.push(c.u64()?);
                }
                Some(ids)
            }
            t => return Err(WireError::BadTag("ids", t)),
        };
        let param = c.u64()?;
        let payload_bits = c.bits()?;
        let labeling = match c.u8()? {
            0 => None,
            1 => {
                let mut labels = Vec::with_capacity(node_count.min(1 << 12) as usize);
                for _ in 0..node_count {
                    labels.push(c.bits()?);
                }
                Some(labels)
            }
            t => return Err(WireError::BadTag("labeling", t)),
        };
        let trials = c.u32()?;
        if trials == 0 {
            return Err(WireError::Invalid("trial count"));
        }
        let rounds = c.u32()?;
        if rounds == 0 {
            return Err(WireError::Invalid("round count"));
        }
        let pattern = match c.u8()? {
            0 => MessagePattern::PerPort,
            1 => MessagePattern::Broadcast,
            2 => MessagePattern::Unicast,
            3 => {
                let k = c.u32()?;
                if k == 0 {
                    return Err(WireError::Invalid("k-messages k"));
                }
                MessagePattern::KMessages(k as usize)
            }
            t => return Err(WireError::BadTag("pattern", t)),
        };
        let stream_mode = match c.u8()? {
            0 => StreamMode::EdgeIndependent,
            1 => StreamMode::SharedPerNode,
            t => return Err(WireError::BadTag("stream mode", t)),
        };
        let faults = match c.u8()? {
            0 => None,
            1 => {
                let drop_rate = c.rate()?;
                let corrupt_rate = c.rate()?;
                let duplicate_rate = c.rate()?;
                let crash_rate = c.rate()?;
                let retry_budget = c.u32()?;
                let fault_seed = c.u64()?;
                Some(WireFaults {
                    drop_rate,
                    corrupt_rate,
                    duplicate_rate,
                    crash_rate,
                    retry_budget,
                    fault_seed,
                })
            }
            t => return Err(WireError::BadTag("faults", t)),
        };
        let seed_source = match c.u8()? {
            0 => SeedSource::Trial(c.u64()?),
            1 => SeedSource::Beacon {
                round_id: c.u64()?,
                value: c.u64()?,
            },
            t => return Err(WireError::BadTag("seed source", t)),
        };
        let (tenant, deadline_ms) = if version >= 2 {
            let tenant = c.str(MAX_NAME, "tenant key")?;
            let deadline_ms = match c.u8()? {
                0 => None,
                1 => {
                    let ms = c.u32()?;
                    if ms == 0 || ms > MAX_DEADLINE_MS {
                        return Err(WireError::Invalid("deadline"));
                    }
                    Some(ms)
                }
                t => return Err(WireError::BadTag("deadline", t)),
            };
            (tenant, deadline_ms)
        } else {
            (String::new(), None)
        };
        c.done()?;
        Ok(Self {
            scheme,
            node_count,
            edges,
            ids,
            param,
            payload: payload_bits,
            labeling,
            trials,
            rounds,
            pattern,
            stream_mode,
            faults,
            seed_source,
            tenant,
            deadline_ms,
        })
    }
}

/// Why the service refused a job instead of running it.
///
/// The taxonomy splits into **retryable** reasons — transient service
/// state the tenant should back off and resubmit through
/// ([`QueueFull`](Self::QueueFull), [`WorkerFault`](Self::WorkerFault);
/// see [`ShedReason::is_retryable`]) — and **terminal** reasons, where
/// resubmitting the identical job can only earn the identical refusal
/// ([`UnknownScheme`](Self::UnknownScheme), [`BadJob`](Self::BadJob),
/// [`Malformed`](Self::Malformed), and
/// [`DeadlineExceeded`](Self::DeadlineExceeded) — the job's own deadline
/// has already passed). The service *always* sheds with a reason: a job
/// never hangs and never takes the worker down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue had no fair room for this tenant — global
    /// backpressure, a per-tenant quota, or a fair-shedding eviction in
    /// favor of a lighter tenant. Retryable: back off and resubmit.
    QueueFull,
    /// The scheme name is not in the registry.
    UnknownScheme(String),
    /// The job was structurally valid on the wire but impossible to run
    /// (bad graph, labeling arity mismatch, parameter out of range, …).
    BadJob(String),
    /// The frame failed to decode.
    Malformed(String),
    /// The job's deadline passed while it waited in the queue, so the
    /// service shed it instead of computing a verdict nobody is waiting
    /// for. Terminal for *this* submission; the tenant may resubmit with
    /// a fresh deadline.
    DeadlineExceeded,
    /// The worker panicked while running this job. The panic cost exactly
    /// this job: the worker was respawned with a fresh cache and keeps
    /// serving. Retryable — though a job that *deterministically* crashes
    /// the worker will earn the same reply every time.
    WorkerFault,
}

impl ShedReason {
    /// Whether a client should back off and resubmit the identical job.
    /// `true` only for transient service-side states
    /// ([`QueueFull`](Self::QueueFull), [`WorkerFault`](Self::WorkerFault));
    /// every reason that indicts the job itself is terminal.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, Self::QueueFull | Self::WorkerFault)
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull => write!(f, "queue full"),
            Self::UnknownScheme(name) => write!(f, "unknown scheme {name:?}"),
            Self::BadJob(why) => write!(f, "bad job: {why}"),
            Self::Malformed(why) => write!(f, "malformed frame: {why}"),
            Self::DeadlineExceeded => write!(f, "deadline exceeded while queued"),
            Self::WorkerFault => write!(f, "worker fault (job panicked; worker respawned)"),
        }
    }
}

/// The result of one completed job: the engine's aggregate estimate plus a
/// snapshot of the shared cache's counters at completion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobResponse {
    /// Trials run.
    pub trials: u64,
    /// Trials whose every node voted accept.
    pub accepts: u64,
    /// Trials in which at least one node was missing input.
    pub degraded_trials: u64,
    /// Total missing messages over all trials.
    pub missing_messages: u64,
    /// Messages dropped in transit over all trials.
    pub dropped: u64,
    /// Messages corrupted and discarded over all trials.
    pub corrupted: u64,
    /// Messages delivered twice over all trials.
    pub duplicated: u64,
    /// Crash-stop hazards fired over all trials.
    pub crashed_nodes: u64,
    /// Retry transmissions over all trials.
    pub retries: u64,
    /// The shared cache's counters when the job completed.
    pub cache: CacheStats,
}

impl JobResponse {
    /// The estimated acceptance probability.
    #[must_use]
    pub fn acceptance(&self) -> f64 {
        self.accepts as f64 / self.trials as f64
    }
}

/// A reply frame: the job's estimate, or the reason it was shed.
#[derive(Debug, Clone, PartialEq)]
pub enum JobReply {
    /// The job ran; here is its estimate.
    Ok(JobResponse),
    /// The job was refused.
    Shed(ShedReason),
}

impl JobReply {
    /// Encodes the reply as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Ok(r) => {
                put_header(&mut out, KIND_OK);
                for word in [
                    r.trials,
                    r.accepts,
                    r.degraded_trials,
                    r.missing_messages,
                    r.dropped,
                    r.corrupted,
                    r.duplicated,
                    r.crashed_nodes,
                    r.retries,
                    r.cache.hits,
                    r.cache.misses,
                    r.cache.epochs,
                    r.cache.retained_bytes,
                    r.cache.shared_fingerprints as u64,
                    r.cache.shared_labels as u64,
                    r.cache.table_slots_reserved,
                ] {
                    put_u64(&mut out, word);
                }
            }
            Self::Shed(reason) => {
                put_header(&mut out, KIND_SHED);
                let (code, detail) = match reason {
                    ShedReason::QueueFull => (0u8, String::new()),
                    ShedReason::UnknownScheme(name) => (1, name.clone()),
                    ShedReason::BadJob(why) => (2, why.clone()),
                    ShedReason::Malformed(why) => (3, why.clone()),
                    ShedReason::DeadlineExceeded => (4, String::new()),
                    ShedReason::WorkerFault => (5, String::new()),
                };
                out.push(code);
                put_str(&mut out, &detail);
            }
        }
        out
    }

    /// Decodes a reply frame payload; total like [`JobRequest::decode`].
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let (_, kind) = c.header_any()?;
        let reply = match kind {
            KIND_OK => {
                let mut words = [0u64; 16];
                for w in &mut words {
                    *w = c.u64()?;
                }
                Self::Ok(JobResponse {
                    trials: words[0],
                    accepts: words[1],
                    degraded_trials: words[2],
                    missing_messages: words[3],
                    dropped: words[4],
                    corrupted: words[5],
                    duplicated: words[6],
                    crashed_nodes: words[7],
                    retries: words[8],
                    cache: CacheStats {
                        hits: words[9],
                        misses: words[10],
                        epochs: words[11],
                        retained_bytes: words[12],
                        shared_fingerprints: words[13] as usize,
                        shared_labels: words[14] as usize,
                        table_slots_reserved: words[15],
                    },
                })
            }
            KIND_SHED => {
                let code = c.u8()?;
                let detail = c.str(MAX_NAME, "shed detail")?;
                Self::Shed(match code {
                    0 => ShedReason::QueueFull,
                    1 => ShedReason::UnknownScheme(detail),
                    2 => ShedReason::BadJob(detail),
                    3 => ShedReason::Malformed(detail),
                    4 => ShedReason::DeadlineExceeded,
                    5 => ShedReason::WorkerFault,
                    t => return Err(WireError::BadTag("shed reason", t)),
                })
            }
            t => return Err(WireError::BadTag("reply kind", t)),
        };
        c.done()?;
        Ok(reply)
    }
}

/// Writes one **plain** frame: `u32` LE payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = frame_payload_len(payload)?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Writes one **checksummed** frame: the header word with
/// [`FRAME_CHECKED_FLAG`] set, an 8-byte FNV-1a checksum of the payload,
/// then the payload. A receiver that verifies the checksum (both
/// [`read_frame`] and [`read_frame_tagged`] do) turns any transport-level
/// corruption into a clean I/O error instead of a garbled — or worse, a
/// *plausible but different* — payload, which is what lets a retry policy
/// treat corruption as transient.
pub fn write_frame_checked(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = frame_payload_len(payload)?;
    w.write_all(&(len | FRAME_CHECKED_FLAG).to_le_bytes())?;
    w.write_all(&frame_checksum(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Validates a payload's length against [`MAX_FRAME_LEN`].
fn frame_payload_len(payload: &[u8]) -> io::Result<u32> {
    u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))
}

/// Splits a frame header word into `(payload length, checksummed?)`,
/// enforcing the [`MAX_FRAME_LEN`] cap **before** any allocation — a
/// hostile 4 GiB length prefix earns an error, never a reservation.
///
/// # Errors
///
/// `InvalidData` when the encoded length exceeds [`MAX_FRAME_LEN`].
pub fn frame_header(word: u32) -> io::Result<(usize, bool)> {
    let checked = word & FRAME_CHECKED_FLAG != 0;
    let len = word & !FRAME_CHECKED_FLAG;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    Ok((len as usize, checked))
}

/// The 64-bit FNV-1a checksum guarding checksummed frames. Not
/// cryptographic — it detects *accidental* corruption (the adversary
/// model here is a lossy wire, not a forger; forged jobs are harmless
/// because verdicts are pure functions of the request).
#[must_use]
pub fn frame_checksum(payload: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Reads one frame's payload plus its flavor (`true` = checksummed).
/// Frames longer than [`MAX_FRAME_LEN`] are rejected before any
/// allocation; a checksummed frame whose checksum does not match its
/// payload is an `InvalidData` error.
pub fn read_frame_tagged(r: &mut impl Read) -> io::Result<(Vec<u8>, bool)> {
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let (len, checked) = frame_header(u32::from_le_bytes(word))?;
    let expected = if checked {
        let mut sum = [0u8; 8];
        r.read_exact(&mut sum)?;
        Some(u64::from_le_bytes(sum))
    } else {
        None
    };
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if let Some(expected) = expected {
        if frame_checksum(&payload) != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame checksum mismatch",
            ));
        }
    }
    Ok((payload, checked))
}

/// Reads one frame's payload, either flavor. See [`read_frame_tagged`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    read_frame_tagged(r).map(|(payload, _)| payload)
}

fn put_header(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bits(out: &mut Vec<u8>, bits: &BitString) {
    put_u32(out, bits.len() as u32);
    out.extend_from_slice(bits.as_bytes());
}

/// A bounds-checked little-endian reader over a payload.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    /// A probability in `[0, 1]` carried as IEEE-754 bits — anything else
    /// (NaN, negatives, > 1) is rejected here so the fault constructors'
    /// panics are unreachable from the wire.
    fn rate(&mut self) -> Result<f64, WireError> {
        let rate = f64::from_bits(self.u64()?);
        if rate.is_finite() && (0.0..=1.0).contains(&rate) {
            Ok(rate)
        } else {
            Err(WireError::Invalid("fault rate"))
        }
    }

    fn str(&mut self, cap: u32, what: &'static str) -> Result<String, WireError> {
        let len = self.u32()?;
        if len > cap {
            return Err(WireError::TooLarge(what));
        }
        String::from_utf8(self.bytes(len as usize)?.to_vec())
            .map_err(|_| WireError::Invalid("utf-8 string"))
    }

    fn bits(&mut self) -> Result<BitString, WireError> {
        let len = self.u32()?;
        if len > MAX_BITS {
            return Err(WireError::TooLarge("bit string"));
        }
        let bytes = self.bytes((len as usize).div_ceil(8))?;
        Ok(BitString::from_bytes(bytes, len as usize))
    }

    /// Reads the payload header, requiring `kind`; returns the version.
    fn header(&mut self, kind: u8) -> Result<u8, WireError> {
        let (version, got) = self.header_any()?;
        if got == kind {
            Ok(version)
        } else {
            Err(WireError::BadTag("payload kind", got))
        }
    }

    /// Reads the payload header; returns `(version, kind)`. Every version
    /// in [`MIN_VERSION`]`..=`[`VERSION`] is accepted.
    fn header_any(&mut self) -> Result<(u8, u8), WireError> {
        if self.bytes(4)? != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = self.u8()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(WireError::BadVersion(version));
        }
        Ok((version, self.u8()?))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}
