//! Verification-as-a-service for the RPLS engine: a resident job engine
//! serving (scheme, configuration, labeling, trials, rounds, pattern,
//! faults, seed-source) verification jobs over a length-prefixed wire
//! format, batching them into the seed-block trial engine behind one
//! persistent, cross-tenant [`PrepCache`](rpls_core::PrepCache).
//!
//! * [`wire`] — the frame format (plain and checksummed flavors) and the
//!   total (never-panicking) codecs for [`JobRequest`] and [`JobReply`];
//! * [`registry`] — scheme names → compiled schemes plus workload
//!   configuration builders;
//! * [`service`] — the resident engine: a supervised worker owning the
//!   shared cache, a bounded fair-shedding queue with per-tenant
//!   accounting and shed-with-reason backpressure;
//! * [`tcp`] — a std [`TcpListener`](std::net::TcpListener) front speaking
//!   the same frames, with per-frame deadlines and drain-on-stop;
//! * [`client`] — a deadline-aware client retrying only retryable sheds,
//!   with deterministic jittered backoff;
//! * [`chaos`] — the seed-replayable network-chaos interposer
//!   ([`ChaosProxy`]) the robustness suites drive everything through.
//!
//! The front's failure semantics — the shed-reason taxonomy, what is
//! retryable, and what supervision guarantees — are documented in the
//! README's "Service failure semantics" section.
//!
//! Seed sourcing is the [`RunSpec`](rpls_core::engine::RunSpec) axis: a
//! job may run on a private trial seed or on **public beacon coins**
//! ([`SeedSource::Beacon`](rpls_core::engine::SeedSource::Beacon)), in
//! which case any third party holding the pulse re-derives the transcript
//! bit-for-bit — see the README's "Service & public randomness" section
//! for the soundness argument.
//!
//! ```
//! use rpls_service::registry::request_skeleton;
//! use rpls_service::service::Service;
//! use rpls_service::wire::JobReply;
//!
//! let service = Service::spawn();
//! // A 4-cycle, spanning-tree scheme rooted at node 0, 32 trials.
//! let mut req = request_skeleton("spanning-tree", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! req.trials = 32;
//! match service.submit(req) {
//!     JobReply::Ok(resp) => assert_eq!(resp.acceptance(), 1.0),
//!     JobReply::Shed(reason) => panic!("shed: {reason}"),
//! }
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod registry;
pub mod service;
pub mod tcp;
pub mod wire;

pub use chaos::{ChaosPlan, ChaosProxy, ChaosStats};
pub use client::{submit_with_retry, ClientError, RetryOutcome, RetryPolicy};
pub use registry::{build, Job, CRASH_TEST_SCHEME, SCHEME_NAMES};
pub use service::{Service, ServiceConfig, ServiceStats, DEFAULT_QUEUE_CAPACITY};
pub use tcp::{FrontConfig, TcpFront};
pub use wire::{JobReply, JobRequest, JobResponse, ShedReason, WireEdge, WireError, WireFaults};
