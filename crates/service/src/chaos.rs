//! A deterministic network-chaos harness: a TCP interposer whose
//! byte-level faults replay from a seed.
//!
//! [`ChaosProxy`] sits between a client and the service's TCP front and
//! perturbs the byte streams — drop, corrupt, truncate, split, delay —
//! the same way the engine's
//! [`FaultPlan`](rpls_core::fault::FaultPlan) perturbs CONGEST messages:
//! every decision is a pure function of `(seed, connection index,
//! direction, byte index)` through the engine's own SplitMix64 counter
//! streams ([`rpls_core::rng`]). Two consequences make the harness a
//! *harness* rather than mere noise:
//!
//! * **Chunking independence** — decisions key on a byte's *index in the
//!   stream*, not on how the OS happened to batch reads, so the fault
//!   pattern a seed denotes does not depend on scheduler timing.
//! * **Replayability** — rerunning the same workload through a proxy with
//!   the same [`ChaosPlan`] reproduces the same delivered bytes, hence
//!   the same retries, sheds, and verdicts (`tests/chaos.rs` pins this).
//!
//! Faults are per-byte hazards, each drawn from its own decision stream
//! (so enabling one never shifts another — the same recipe as
//! `FaultSpec`'s independent per-message draws):
//!
//! * **drop** — the byte silently vanishes from the stream (downstream
//!   sees a shorter frame: a checksum failure or a read deadline);
//! * **corrupt** — one bit of the byte flips (caught by checksummed
//!   frames, surfacing as a retryable transport error);
//! * **truncate** — the stream is cut and the connection killed from
//!   this byte on (both directions);
//! * **split** — a write boundary is forced before this byte (content
//!   neutral; exercises the front's partial-read paths);
//! * **delay** — forwarding pauses for [`ChaosPlan::delay`] before this
//!   byte (content neutral; exercises deadlines).

use rpls_core::rng::{mix_seed, state_stream_word};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// 2⁶⁴ as an `f64`, the scale mapping a probability to a 64-bit
/// threshold (the [`rpls_core::fault`] convention).
const TWO_64: f64 = 18_446_744_073_709_551_616.0;

/// Domain tags for the per-action decision streams.
const TAG_DROP: u64 = 1;
const TAG_CORRUPT: u64 = 2;
const TAG_TRUNCATE: u64 = 3;
const TAG_SPLIT: u64 = 4;
const TAG_DELAY: u64 = 5;

/// The seeded fault recipe a [`ChaosProxy`] applies. All rates are
/// per-byte probabilities in `[0, 1]`; the default is transparent (all
/// zero).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed of every decision stream.
    pub seed: u64,
    /// Per-byte hazard of the byte vanishing from the stream.
    pub drop_rate: f64,
    /// Per-byte hazard of a single bit flip.
    pub corrupt_rate: f64,
    /// Per-byte hazard of the connection being cut from this byte on.
    pub truncate_rate: f64,
    /// Per-byte hazard of a forced write boundary before this byte.
    pub split_rate: f64,
    /// Per-byte hazard of pausing for [`ChaosPlan::delay`].
    pub delay_rate: f64,
    /// The pause a delay hazard inserts.
    pub delay: Duration,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
            split_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(1),
        }
    }
}

impl ChaosPlan {
    /// A transparent plan with the given seed — a starting point for the
    /// builder-style rate setters.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Whether every hazard is zero (the proxy forwards verbatim).
    #[must_use]
    pub fn is_transparent(&self) -> bool {
        self.drop_rate <= 0.0
            && self.corrupt_rate <= 0.0
            && self.truncate_rate <= 0.0
            && self.split_rate <= 0.0
            && self.delay_rate <= 0.0
    }

    /// Whether the hazard tagged `tag` fires for byte `index` of `link`,
    /// also returning the decision word (its high bits pick e.g. which
    /// bit a corruption flips).
    fn hazard(&self, tag: u64, link: u64, index: u64, rate: f64) -> (bool, u64) {
        if rate <= 0.0 {
            return (false, 0);
        }
        let state = mix_seed(self.seed, link, tag);
        let word = state_stream_word(state, index);
        (u128::from(word) < threshold(rate), word)
    }
}

/// Maps a probability to its threshold over the 64-bit word space; exact
/// at the endpoints (0.0 never fires, 1.0 always fires).
fn threshold(rate: f64) -> u128 {
    (rate.clamp(0.0, 1.0) * TWO_64) as u128
}

/// Lifetime counters of a [`ChaosProxy`] — what the chaos actually did.
/// Useful for asserting a run was genuinely exercised (nonzero faults);
/// byte totals on killed connections can race the peer's teardown, so
/// replay assertions should compare client/service accounting instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Connections accepted (and interposed).
    pub connections: u64,
    /// Bytes that arrived at the proxy (both directions, pre-fault).
    pub bytes_seen: u64,
    /// Bytes silently dropped.
    pub bytes_dropped: u64,
    /// Bytes forwarded with a flipped bit.
    pub bytes_corrupted: u64,
    /// Connections cut by a truncate hazard.
    pub truncations: u64,
    /// Forced write boundaries.
    pub splits: u64,
    /// Delay pauses inserted.
    pub delays: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    bytes_seen: AtomicU64,
    bytes_dropped: AtomicU64,
    bytes_corrupted: AtomicU64,
    truncations: AtomicU64,
    splits: AtomicU64,
    delays: AtomicU64,
}

/// A running chaos interposer: connect to [`ChaosProxy::addr`] instead of
/// the upstream service and every byte in both directions runs the
/// [`ChaosPlan`] gauntlet. Connection indices are assigned in accept
/// order, so a client opening connections sequentially gets a fully
/// deterministic fault pattern.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    handle: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` and interposes every accepted connection onto
    /// `upstream` under `plan`.
    ///
    /// # Errors
    ///
    /// Propagates listener binding failures.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let stop_flag = Arc::clone(&stop);
        let stats = Arc::clone(&counters);
        let handle = std::thread::Builder::new()
            .name("rpls-chaos-accept".into())
            .spawn(move || accept_loop(&listener, upstream, plan, &stop_flag, &stats))
            .expect("spawn chaos accept loop");
        Ok(Self {
            addr,
            stop,
            counters,
            handle: Some(handle),
        })
    }

    /// The address clients should connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of what the chaos has done so far.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            bytes_seen: self.counters.bytes_seen.load(Ordering::Relaxed),
            bytes_dropped: self.counters.bytes_dropped.load(Ordering::Relaxed),
            bytes_corrupted: self.counters.bytes_corrupted.load(Ordering::Relaxed),
            truncations: self.counters.truncations.load(Ordering::Relaxed),
            splits: self.counters.splits.load(Ordering::Relaxed),
            delays: self.counters.delays.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and tears down; connections already interposed are
    /// cut (chaos is allowed to be rude on shutdown).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: ChaosPlan,
    stop: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) {
    let mut conn_index = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let index = conn_index;
                conn_index += 1;
                let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(2))
                else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                spawn_pumps(client, server, plan, index, stop, counters);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Starts the two directional pumps of one interposed connection. Each
/// direction is its own link (`connection index * 2 + direction`) with
/// its own decision streams; killing either side shuts the whole
/// connection down, as a real middlebox failure would.
fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    plan: ChaosPlan,
    index: u64,
    stop: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) {
    let pairs = [
        (client.try_clone(), server.try_clone(), index * 2),
        (server.try_clone(), client.try_clone(), index * 2 + 1),
    ];
    for (from, to, link) in pairs {
        let (Ok(from), Ok(to)) = (from, to) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        let stop = Arc::clone(stop);
        let counters = Arc::clone(counters);
        // Pump threads detach; they exit on EOF, a truncate hazard, a
        // peer shutdown, or the stop flag.
        let _ = std::thread::Builder::new()
            .name("rpls-chaos-pump".into())
            .spawn(move || pump(from, to, plan, link, &stop, &counters));
    }
}

/// Forwards one direction byte-by-byte through the hazard gauntlet.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    plan: ChaosPlan,
    link: u64,
    stop: &AtomicBool,
    counters: &Counters,
) {
    if from
        .set_read_timeout(Some(Duration::from_millis(20)))
        .is_err()
    {
        return;
    }
    let mut buf = [0u8; 4096];
    let mut out = Vec::with_capacity(4096);
    let mut index = 0u64;
    'outer: loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        counters.bytes_seen.fetch_add(n as u64, Ordering::Relaxed);
        out.clear();
        for &byte in &buf[..n] {
            let i = index;
            index += 1;
            if plan.hazard(TAG_TRUNCATE, link, i, plan.truncate_rate).0 {
                counters.truncations.fetch_add(1, Ordering::Relaxed);
                // Cut, don't flush: bytes queued before the cut are lost
                // with it.
                break 'outer;
            }
            if plan.hazard(TAG_DROP, link, i, plan.drop_rate).0 {
                counters.bytes_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if plan.hazard(TAG_SPLIT, link, i, plan.split_rate).0 && !out.is_empty() {
                counters.splits.fetch_add(1, Ordering::Relaxed);
                if to.write_all(&out).is_err() || to.flush().is_err() {
                    break 'outer;
                }
                out.clear();
            }
            if plan.hazard(TAG_DELAY, link, i, plan.delay_rate).0 {
                counters.delays.fetch_add(1, Ordering::Relaxed);
                if !out.is_empty() {
                    if to.write_all(&out).is_err() || to.flush().is_err() {
                        break 'outer;
                    }
                    out.clear();
                }
                std::thread::sleep(plan.delay);
            }
            let (corrupt, word) = plan.hazard(TAG_CORRUPT, link, i, plan.corrupt_rate);
            if corrupt {
                counters.bytes_corrupted.fetch_add(1, Ordering::Relaxed);
                out.push(byte ^ (1 << ((word >> 32) % 8)));
            } else {
                out.push(byte);
            }
        }
        if !out.is_empty() && (to.write_all(&out).is_err() || to.flush().is_err()) {
            break;
        }
    }
    // Tear both half-connections down so the twin pump exits too.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
