//! Facade crate for the *Randomized Proof-Labeling Schemes* reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! * [`bits`] — bit-exact strings ([`rpls_bits`]);
//! * [`graph`] — port-numbered networks, generators, algorithms and the
//!   crossing operator ([`rpls_graph`]);
//! * [`fingerprint`] — GF(p) polynomial fingerprints and the 2-party
//!   equality protocol ([`rpls_fingerprint`]);
//! * [`core`] — the PLS/RPLS framework, engines, the Theorem 3.1 compiler
//!   and the universal schemes ([`rpls_core`]);
//! * [`schemes`] — concrete schemes for the predicates of §5
//!   ([`rpls_schemes`]);
//! * [`crossing`] — the §4 lower-bound machinery ([`rpls_crossing`]);
//! * [`service`] — the resident verification service: wire format, job
//!   queue, shared [`PrepCache`](rpls_core::PrepCache), TCP front
//!   ([`rpls_service`]).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a guided tour: build a network, run a
//! deterministic spanning-tree scheme, compile it into a randomized one and
//! compare the verification complexities.

#![forbid(unsafe_code)]

pub use rpls_bits as bits;
pub use rpls_core as core;
pub use rpls_crossing as crossing;
pub use rpls_fingerprint as fingerprint;
pub use rpls_graph as graph;
pub use rpls_schemes as schemes;
pub use rpls_service as service;
