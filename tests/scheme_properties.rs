//! Property-based completeness tests: every scheme accepts every legal
//! workload we can generate, across random graphs, weights and identities.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls::core::{engine, CompiledRpls, Configuration, Pls, Predicate, Rpls};
use rpls::graph::{connectivity, flow as graph_flow, generators, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MST scheme completeness on random weighted graphs (with ties).
    #[test]
    fn mst_complete_on_random_weighted_graphs(n in 4usize..20, seed in any::<u64>(), maxw in 1u64..64) {
        use rpls::schemes::mst::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.3, &mut rng);
        let w = generators::random_weights(&g, maxw, &mut rng);
        let config = mst_config(&Configuration::plain(g.with_weights(&w)));
        prop_assert!(MstPredicate::new().holds(&config));
        let labels = MstPls::new().label(&config);
        let out = engine::run_deterministic(&MstPls::new(), &config, &labels);
        prop_assert!(out.accepted(), "rejecting: {:?}", out.rejecting_nodes());
        // Compiled scheme accepts as well (one-sided: always).
        let compiled = CompiledRpls::new(MstPls::new());
        let clabels = compiled.label(&config);
        prop_assert!(engine::run_randomized(&compiled, &config, &clabels, seed)
            .outcome
            .accepted());
    }

    /// Spanning-tree scheme completeness with shuffled identities.
    #[test]
    fn spanning_tree_complete_with_shuffled_ids(n in 2usize..30, seed in any::<u64>()) {
        use rand::RngExt;
        use rpls::schemes::spanning_tree::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.25, &mut rng);
        let mut ids: Vec<u64> = (0..n as u64).map(|i| i * 13 + 5).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            ids.swap(i, j);
        }
        let root = NodeId::new(rng.random_range(0..n));
        let config = spanning_tree_config(&Configuration::with_ids(g, &ids), root);
        prop_assert!(SpanningTreePredicate::new().holds(&config));
        let labels = SpanningTreePls::new().label(&config);
        prop_assert!(engine::run_deterministic(&SpanningTreePls::new(), &config, &labels).accepted());
    }

    /// Leader scheme completeness for every choice of leader.
    #[test]
    fn leader_complete_for_any_leader(n in 2usize..25, seed in any::<u64>(), pick in any::<usize>()) {
        use rpls::schemes::leader::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.2, &mut rng);
        let leader = NodeId::new(pick % n);
        let config = leader_config(&Configuration::plain(g), leader);
        prop_assert!(LeaderPredicate::new().holds(&config));
        let labels = LeaderPls::new().label(&config);
        prop_assert!(engine::run_deterministic(&LeaderPls::new(), &config, &labels).accepted());
    }

    /// Coloring scheme completeness on random graphs via greedy colorings.
    #[test]
    fn coloring_complete_on_random_graphs(n in 2usize..25, p in 0.1f64..0.7, seed in any::<u64>()) {
        use rpls::schemes::coloring::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, p, &mut rng);
        let config = greedy_coloring_config(&Configuration::plain(g));
        prop_assert!(ProperColoringPredicate::new().holds(&config));
        let labels = ColoringPls::new().label(&config);
        prop_assert!(engine::run_deterministic(&ColoringPls::new(), &config, &labels).accepted());
    }

    /// Flow scheme completeness for whatever flow value the graph happens
    /// to have between nodes 0 and n-1.
    #[test]
    fn flow_complete_at_true_value(n in 4usize..16, p in 0.2f64..0.6, seed in any::<u64>()) {
        use rpls::schemes::flow::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, p, &mut rng);
        let (s, t) = (NodeId::new(0), NodeId::new(n - 1));
        let k = graph_flow::max_flow_unit(&g, s, t);
        let config = Configuration::plain(g);
        let predicate = FlowPredicate::new(0, (n - 1) as u64, k);
        prop_assert!(predicate.holds(&config));
        let scheme = FlowPls::new(predicate);
        let labels = scheme.label(&config);
        let out = engine::run_deterministic(&scheme, &config, &labels);
        prop_assert!(out.accepted(), "k={k} rejecting {:?}", out.rejecting_nodes());
    }

    /// Vertex-connectivity scheme completeness at the true value, on
    /// non-adjacent terminal pairs.
    #[test]
    fn st_connectivity_complete_at_true_value(n in 5usize..14, p in 0.2f64..0.5, seed in any::<u64>()) {
        use rpls::schemes::vertex_connectivity::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, p, &mut rng);
        let (s, t) = (NodeId::new(0), NodeId::new(n - 1));
        prop_assume!(!g.are_adjacent(s, t));
        let k = graph_flow::vertex_connectivity_st(&g, s, t);
        let config = Configuration::plain(g);
        let predicate = StConnectivityPredicate::new(0, (n - 1) as u64, k);
        prop_assert!(predicate.holds(&config));
        let scheme = StConnectivityPls::new(predicate);
        let labels = scheme.label(&config);
        let out = engine::run_deterministic(&scheme, &config, &labels);
        prop_assert!(out.accepted(), "k={k} rejecting {:?}", out.rejecting_nodes());
    }

    /// Biconnectivity scheme soundness sampling: on graphs with an
    /// articulation point, the honest-style labels never pass.
    #[test]
    fn biconnectivity_rejects_cut_graphs(n in 3usize..12, seed in any::<u64>()) {
        use rpls::schemes::biconnectivity::*;
        let mut rng = StdRng::seed_from_u64(seed);
        // Two random connected blobs joined at a single node: always has an
        // articulation point (the joint), unless a blob is trivial.
        let g1 = generators::gnp_connected(n, 0.5, &mut rng);
        let mut b = rpls::graph::GraphBuilder::new(2 * n - 1);
        for (_, rec) in g1.edges() {
            b.add_edge(rec.u.index(), rec.v.index()).unwrap();
        }
        // Mirror blob on nodes n-1..2n-1 (sharing node n-1 requires offset
        // mapping: node i of blob2 -> n - 1 + i).
        for (_, rec) in g1.edges() {
            let (u, v) = (n - 1 + rec.u.index(), n - 1 + rec.v.index());
            if b.add_edge(u, v).is_err() {
                // Edge already present (only possible for the shared node
                // pairs; skip).
            }
        }
        let g = b.finish().unwrap();
        prop_assume!(connectivity::is_connected(&g));
        prop_assume!(!connectivity::is_biconnected(&g));
        let config = Configuration::plain(g);
        let labels = BiconnectivityPls::new().label(&config);
        prop_assert!(!engine::run_deterministic(&BiconnectivityPls::new(), &config, &labels).accepted());
    }

    /// The compiled scheme's certificate size depends only on κ, never on
    /// which legal configuration is being verified.
    #[test]
    fn compiled_certificate_size_is_config_independent(n in 4usize..24, seed in any::<u64>()) {
        use rpls::schemes::acyclicity::AcyclicityPls;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        let config = Configuration::plain(g);
        let scheme = CompiledRpls::new(AcyclicityPls);
        let labels = scheme.label(&config);
        let rec = engine::run_randomized(&scheme, &config, &labels, seed);
        // κ = 96 for the acyclicity label layout at any n < 2^32.
        prop_assert_eq!(
            rec.max_certificate_bits(),
            CompiledRpls::<AcyclicityPls>::certificate_bits_for_kappa(96)
        );
    }
}
