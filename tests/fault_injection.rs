//! The fault-injection layer's three contracts, pinned end to end.
//!
//! 1. **Zero-fault identity**: under a transparent [`FaultPlan`] every
//!    faulted engine path — scalar, batched, multiround, and the
//!    Monte-Carlo estimator — is bit-identical to its fault-free twin, for
//!    every scheme, honest and hostile labelings alike, in both stream
//!    modes.
//! 2. **Soundness preservation**: faults only ever flip accept → reject.
//!    For any fault rates (up to and including 1.0) a faulted trial
//!    accepts only if the fault-free trial with the same seed accepts, so
//!    an illegal labeling the clean engine rejects is never accepted by
//!    the faulted one.
//! 3. **Replay determinism**: the whole fault schedule is a pure function
//!    of `(trial seed, fault seed)` — re-running reproduces every summary,
//!    verdict, and counter exactly.

use proptest::prelude::*;
use rpls::core::engine::{self, RoundSummary, StreamMode};
use rpls::core::stats;
use rpls::core::{
    Configuration, FaultPlan, FaultSpec, FaultedMultiRoundSummary, FaultedRoundSummary, Labeling,
    NodeVerdict, Pls, PrepCache, RoundScratch, Rpls,
};
use rpls::graph::{generators, NodeId};
use rpls_core::CompiledRpls;

/// Flips one mid-label bit of the first node with a non-empty label — a
/// tampered replica the clean engine rejects with probability ≥ 1/2.
fn tamper(labeling: &Labeling) -> Labeling {
    let mut out = labeling.clone();
    for v in 0..out.len() {
        let label = out.get(NodeId::new(v));
        if label.is_empty() {
            continue;
        }
        let target = label.len() / 2;
        let flipped: rpls::bits::BitString = label
            .iter()
            .enumerate()
            .map(|(i, b)| if i == target { !b } else { b })
            .collect();
        out.set(NodeId::new(v), flipped);
        break;
    }
    out
}

/// Structurally hostile labels: wrong widths, nothing parseable.
fn garbage(config: &Configuration) -> Labeling {
    Labeling::new(
        (0..config.node_count())
            .map(|i| rpls::bits::BitString::zeros(i % 5))
            .collect(),
    )
}

/// The fault specs the soundness sweep probes: each channel alone, a mixed
/// plan, and the total-loss endpoints (rate exactly 1.0).
fn hostile_specs() -> Vec<FaultSpec> {
    vec![
        FaultSpec::transparent().with_drop(0.3),
        FaultSpec::transparent()
            .with_corrupt(0.3)
            .with_retry_budget(2),
        FaultSpec::transparent().with_duplicate(0.5),
        FaultSpec::transparent().with_crash(0.2),
        FaultSpec::transparent()
            .with_drop(0.2)
            .with_corrupt(0.2)
            .with_duplicate(0.2)
            .with_crash(0.1)
            .with_retry_budget(1),
        FaultSpec::transparent().with_drop(1.0),
        FaultSpec::transparent()
            .with_corrupt(1.0)
            .with_retry_budget(3),
        FaultSpec::transparent().with_crash(1.0),
    ]
}

const FAULT_SEED: u64 = 0xFA11_5EED;

/// Zero-fault identity for one (scheme, labeling) pair: every faulted path
/// under a transparent plan reproduces its clean twin bit for bit.
fn check_transparent_identity<S: Pls + Clone>(
    name: &str,
    scheme: &CompiledRpls<S>,
    config: &Configuration,
    labeling: &Labeling,
    cache: &mut PrepCache,
) {
    let trials = 48usize;
    let seed = 0xC0FFu64;
    let seeds: Vec<u64> = (0..trials)
        .map(|t| stats::trial_seed(seed, t as u64))
        .collect();
    let plan = FaultPlan::new(FaultSpec::transparent(), FAULT_SEED);
    assert!(plan.is_transparent());
    let mut scratch = RoundScratch::new();

    for mode in [StreamMode::EdgeIndependent, StreamMode::SharedPerNode] {
        // Unprepared scalar entry point.
        let clean =
            engine::run_randomized_with(scheme, config, labeling, seeds[0], mode, &mut scratch);
        let clean_votes: Vec<bool> = scratch.votes().to_vec();
        let faulted = engine::run_randomized_faulted_with(
            scheme,
            config,
            labeling,
            seeds[0],
            &plan,
            mode,
            &mut scratch,
        );
        assert_eq!(faulted.summary, clean, "{name}: unprepared summary");
        assert_eq!(faulted.missing_messages(), 0);
        assert_eq!(faulted.counts, Default::default());
        for (verdict, vote) in faulted.verdicts.iter().zip(&clean_votes) {
            assert_eq!(
                *verdict,
                if *vote {
                    NodeVerdict::Accept
                } else {
                    NodeVerdict::Reject
                },
                "{name}: transparent verdicts mirror clean votes"
            );
        }

        // Prepared scalar loop, against the sweep-shared cache.
        let prepared = scheme.prepare_cached(config, labeling, trials, cache);
        let scalar_clean: Vec<RoundSummary> = seeds
            .iter()
            .map(|&s| {
                engine::run_randomized_prepared_with(&*prepared, config, s, mode, &mut scratch)
            })
            .collect();
        for (&s, want) in seeds.iter().zip(&scalar_clean) {
            let got = engine::run_randomized_prepared_faulted_with(
                &*prepared,
                config,
                s,
                &plan,
                mode,
                &mut scratch,
            );
            assert_eq!(&got.summary, want, "{name}: prepared scalar summary");
            assert!(got.insufficient_nodes() == 0 && got.missing_messages() == 0);
        }

        // Batched trial loop (the compiled override's transparent branch).
        let mut batched_clean: Vec<RoundSummary> = Vec::new();
        engine::run_trials_batched_with(&*prepared, config, &seeds, mode, &mut scratch, &mut |s| {
            batched_clean.push(s)
        });
        let mut batched_faulted: Vec<FaultedRoundSummary> = Vec::new();
        engine::run_trials_faulted_with(
            &*prepared,
            config,
            &seeds,
            &plan,
            mode,
            &mut scratch,
            &mut |s| batched_faulted.push(s),
        );
        let unwrapped: Vec<RoundSummary> = batched_faulted
            .iter()
            .inspect(|s| {
                assert_eq!(s.insufficient_nodes, 0, "{name}: transparent batched");
                assert_eq!(s.missing_messages, 0);
                assert_eq!(s.counts, Default::default());
            })
            .map(|s| s.summary)
            .collect();
        assert_eq!(unwrapped, batched_clean, "{name}: batched summaries");

        // Multiround schedules.
        for rounds in [1usize, 2, 5] {
            let mut multi_clean = Vec::new();
            engine::run_multiround_trials_batched_with(
                &*prepared,
                config,
                &seeds[..16],
                rounds,
                mode,
                &mut scratch,
                &mut |s| multi_clean.push(s),
            );
            let mut multi_faulted: Vec<FaultedMultiRoundSummary> = Vec::new();
            engine::run_multiround_trials_faulted_with(
                &*prepared,
                config,
                &seeds[..16],
                rounds,
                &plan,
                mode,
                &mut scratch,
                &mut |s| multi_faulted.push(s),
            );
            for (got, want) in multi_faulted.iter().zip(&multi_clean) {
                assert_eq!(&got.summary, want, "{name}: multiround t={rounds}");
                assert_eq!(got.missing_messages, 0);
            }
        }
    }

    // The faulted estimator under a transparent plan reproduces the clean
    // estimate exactly (same per-trial seeds, same engine).
    let clean_p = stats::acceptance_probability(scheme, config, labeling, trials, seed);
    let faulted_p = stats::acceptance_under_faults(scheme, config, labeling, trials, seed, &plan);
    assert_eq!(faulted_p.acceptance(), clean_p, "{name}: estimator");
    assert_eq!(faulted_p.degraded_trials, 0);
    assert_eq!(faulted_p.counts, Default::default());
}

/// Soundness preservation for one (scheme, labeling) pair: under every
/// hostile spec, a faulted trial accepts only if the clean trial with the
/// same seed accepts — and the batched faulted path agrees verdict-for-
/// verdict with the scalar faulted reference.
fn check_soundness<S: Pls + Clone>(
    name: &str,
    scheme: &CompiledRpls<S>,
    config: &Configuration,
    labeling: &Labeling,
    cache: &mut PrepCache,
) {
    let trials = 32usize;
    let seed = 0x50FAu64;
    let seeds: Vec<u64> = (0..trials)
        .map(|t| stats::trial_seed(seed, t as u64))
        .collect();
    let mut scratch = RoundScratch::new();
    let prepared = scheme.prepare_cached(config, labeling, trials, cache);
    let mode = StreamMode::EdgeIndependent;

    let clean: Vec<RoundSummary> = seeds
        .iter()
        .map(|&s| engine::run_randomized_prepared_with(&*prepared, config, s, mode, &mut scratch))
        .collect();

    for spec in hostile_specs() {
        let plan = FaultPlan::new(spec, FAULT_SEED);

        // Scalar faulted reference, and the batched override against it.
        let scalar: Vec<FaultedRoundSummary> = seeds
            .iter()
            .map(|&s| {
                engine::run_randomized_prepared_faulted_with(
                    &*prepared,
                    config,
                    s,
                    &plan,
                    mode,
                    &mut scratch,
                )
                .compact()
            })
            .collect();
        let mut batched: Vec<FaultedRoundSummary> = Vec::new();
        engine::run_trials_faulted_with(
            &*prepared,
            config,
            &seeds,
            &plan,
            mode,
            &mut scratch,
            &mut |s| batched.push(s),
        );
        assert_eq!(
            scalar, batched,
            "{name}: scalar vs batched faulted ({spec:?})"
        );

        for ((faulted, cl), &s) in scalar.iter().zip(&clean).zip(&seeds) {
            // The load-bearing invariant: faults never flip reject → accept.
            assert!(
                !faulted.summary.accepted || cl.accepted,
                "{name}: faulted trial accepted a clean-rejected run (seed {s:#x}, {spec:?})"
            );
            // And a node missing input always rejects conservatively.
            assert!(
                !(faulted.missing_messages > 0 && faulted.summary.accepted),
                "{name}: accepted despite missing input (seed {s:#x}, {spec:?})"
            );
        }

        // The multiround schedules obey the same one-sided contract.
        for rounds in [1usize, 3] {
            let mut multi: Vec<FaultedMultiRoundSummary> = Vec::new();
            engine::run_multiround_trials_faulted_with(
                &*prepared,
                config,
                &seeds[..12],
                rounds,
                &plan,
                mode,
                &mut scratch,
                &mut |s| multi.push(s),
            );
            let mut multi_clean = Vec::new();
            engine::run_multiround_trials_batched_with(
                &*prepared,
                config,
                &seeds[..12],
                rounds,
                mode,
                &mut scratch,
                &mut |s| multi_clean.push(s),
            );
            for (f, cl) in multi.iter().zip(&multi_clean) {
                assert!(
                    !f.summary.accepted || cl.accepted,
                    "{name}: multiround t={rounds} soundness ({spec:?})"
                );
                assert!(
                    f.summary.decided_round <= cl.decided_round,
                    "{name}: a fault can only advance the decision round"
                );
                assert!(!(f.missing_messages > 0 && f.summary.accepted));
            }
        }
    }
}

/// Runs both contract checks for one scheme over honest, tampered, and
/// garbage labelings, sharing one preparation cache across the sweep.
fn contracts<S: Pls + Clone>(name: &str, inner: S, config: &Configuration) {
    let scheme = CompiledRpls::new(inner);
    let mut cache = PrepCache::new();
    let honest = Rpls::label(&scheme, config);
    for labeling in [honest.clone(), tamper(&honest), garbage(config)] {
        check_transparent_identity(name, &scheme, config, &labeling, &mut cache);
        check_soundness(name, &scheme, config, &labeling, &mut cache);
    }
}

#[test]
fn every_scheme_survives_fault_injection() {
    use rpls::schemes::*;
    let plain5 = Configuration::plain(generators::cycle(5));
    let path5 = Configuration::plain(generators::path(5));
    let cyc6 = Configuration::plain(generators::cycle(6));

    contracts("acyclicity", acyclicity::AcyclicityPls::new(), &path5);
    contracts(
        "biconnectivity",
        biconnectivity::BiconnectivityPls::new(),
        &plain5,
    );
    contracts(
        "coloring",
        coloring::ColoringPls::new(),
        &coloring::greedy_coloring_config(&plain5),
    );
    contracts(
        "cycle_at_least",
        cycle_at_least::CycleAtLeastPls::new(4),
        &plain5,
    );
    contracts(
        "leader",
        leader::LeaderPls::new(),
        &leader::leader_config(&plain5, NodeId::new(2)),
    );
    contracts(
        "spanning_tree",
        rpls::schemes::spanning_tree::SpanningTreePls::new(),
        &rpls::schemes::spanning_tree::spanning_tree_config(&plain5, NodeId::new(0)),
    );
    contracts(
        "uniformity",
        uniformity::UniformityPls::new(),
        &uniformity::uniform_config(&plain5, &rpls::bits::BitString::zeros(16)),
    );
    contracts(
        "mst",
        mst::MstPls::new(),
        &mst::mst_config(&Configuration::plain(
            generators::cycle(5).with_weights(&[4, 1, 5, 2, 3]),
        )),
    );
    contracts(
        "flow",
        flow::FlowPls::new(flow::FlowPredicate::new(0, 3, 2)),
        &cyc6,
    );
    contracts(
        "vertex_connectivity",
        vertex_connectivity::StConnectivityPls::new(
            vertex_connectivity::StConnectivityPredicate::new(0, 3, 2),
        ),
        &cyc6,
    );
    contracts(
        "cycle_at_most",
        cycle_at_most::cycle_at_most_pls(6),
        &plain5,
    );
    contracts("symmetry", symmetry::symmetry_pls(), &path5);
}

/// A node that lost input votes `InsufficientInput` — and on an honest
/// labeling (clean engine accepts with probability 1) the faulted verdict
/// is accept exactly when no message went missing.
#[test]
fn honest_acceptance_degrades_exactly_with_missing_input() {
    let config = rpls::schemes::spanning_tree::spanning_tree_config(
        &Configuration::plain(generators::cycle(16)),
        NodeId::new(0),
    );
    let scheme = CompiledRpls::new(rpls::schemes::spanning_tree::SpanningTreePls::new());
    let labeling = Rpls::label(&scheme, &config);
    // 5% per message over 32 directed ports: ≈ 19% of trials deliver
    // everything, so 64 trials all but surely see both outcomes.
    let plan = FaultPlan::new(FaultSpec::transparent().with_drop(0.05), 99);
    let mut scratch = RoundScratch::new();
    let mut saw_degraded = false;
    let mut saw_intact = false;
    for trial in 0..64u64 {
        let summary = engine::run_randomized_faulted_with(
            &scheme,
            &config,
            &labeling,
            stats::trial_seed(5, trial),
            &plan,
            StreamMode::EdgeIndependent,
            &mut scratch,
        );
        assert_eq!(
            summary.accepted(),
            summary.missing_messages() == 0,
            "honest run: acceptance == full delivery"
        );
        for (verdict, &miss) in summary.verdicts.iter().zip(&summary.missing) {
            assert_eq!(
                matches!(verdict, NodeVerdict::InsufficientInput),
                miss > 0,
                "InsufficientInput exactly on the nodes that lost input"
            );
        }
        saw_degraded |= summary.missing_messages() > 0;
        saw_intact |= summary.missing_messages() == 0;
    }
    assert!(
        saw_degraded && saw_intact,
        "a 5% drop rate over 64 trials should produce both outcomes"
    );
}

/// Total-loss endpoints are exact, not approximate: crash rate 1.0 silences
/// every channel (zero bits on the wire), drop rate 1.0 loses every message
/// but still pays for the transmission.
#[test]
fn endpoint_rates_silence_or_lose_everything() {
    let config = rpls::schemes::spanning_tree::spanning_tree_config(
        &Configuration::plain(generators::cycle(8)),
        NodeId::new(0),
    );
    let scheme = CompiledRpls::new(rpls::schemes::spanning_tree::SpanningTreePls::new());
    let labeling = Rpls::label(&scheme, &config);
    let mut scratch = RoundScratch::new();
    let ports = config.port_count();

    let crash_all = FaultPlan::new(FaultSpec::transparent().with_crash(1.0), 7);
    let s = engine::run_randomized_faulted_with(
        &scheme,
        &config,
        &labeling,
        42,
        &crash_all,
        StreamMode::EdgeIndependent,
        &mut scratch,
    );
    assert!(!s.accepted());
    assert_eq!(s.counts.crashed_nodes, config.node_count());
    assert_eq!(s.missing_messages(), ports);
    assert_eq!(
        s.summary.total_certificate_bits, 0,
        "crashed senders are silent"
    );

    let drop_all = FaultPlan::new(FaultSpec::transparent().with_drop(1.0), 7);
    let s = engine::run_randomized_faulted_with(
        &scheme,
        &config,
        &labeling,
        42,
        &drop_all,
        StreamMode::EdgeIndependent,
        &mut scratch,
    );
    assert!(!s.accepted());
    assert_eq!(s.counts.dropped, ports);
    assert_eq!(s.missing_messages(), ports);
    assert!(
        s.summary.total_certificate_bits > 0,
        "dropped messages were still transmitted"
    );
}

/// The multiround resend schedule: a retry budget can only recover
/// messages (missing never increases) and every retry is paid for in
/// `total_bits`.
#[test]
fn retries_recover_messages_and_cost_bits() {
    let config = rpls::schemes::spanning_tree::spanning_tree_config(
        &Configuration::plain(generators::cycle(24)),
        NodeId::new(0),
    );
    let scheme = CompiledRpls::new(rpls::schemes::spanning_tree::SpanningTreePls::new());
    let labeling = Rpls::label(&scheme, &config);
    let prepared = scheme.prepare(&config, &labeling, 8);
    let mut scratch = RoundScratch::new();
    let seeds: Vec<u64> = (0..8).map(|t| stats::trial_seed(11, t)).collect();

    let run = |budget: usize, scratch: &mut RoundScratch| {
        let plan = FaultPlan::new(
            FaultSpec::transparent()
                .with_corrupt(0.5)
                .with_retry_budget(budget),
            3,
        );
        let mut out: Vec<FaultedMultiRoundSummary> = Vec::new();
        engine::run_multiround_trials_faulted_with(
            &*prepared,
            &config,
            &seeds,
            4,
            &plan,
            StreamMode::EdgeIndependent,
            scratch,
            &mut |s| out.push(s),
        );
        out
    };
    let without = run(0, &mut scratch);
    let with = run(3, &mut scratch);
    let retries: usize = with.iter().map(|s| s.counts.retries).sum();
    assert!(retries > 0, "a 50% corrupt rate must trigger retries");
    assert_eq!(without.iter().map(|s| s.counts.retries).sum::<usize>(), 0);
    for (w, wo) in with.iter().zip(&without) {
        assert!(
            w.missing_messages <= wo.missing_messages,
            "retries only recover messages"
        );
        assert!(
            w.summary.total_bits >= wo.summary.total_bits,
            "every retry transmission is accounted"
        );
    }
    assert!(
        with.iter().map(|s| s.missing_messages).sum::<usize>()
            < without.iter().map(|s| s.missing_messages).sum::<usize>(),
        "3 retries against 50% loss recover some messages over 8 trials"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replay determinism: the faulted engine is a pure function of
    /// `(trial seed, fault seed, spec)` — both the scalar summary and the
    /// batched trial block reproduce exactly.
    #[test]
    fn fault_schedules_replay_deterministically(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        drop_milli in 0u64..=1000,
        corrupt_milli in 0u64..=1000,
        crash_milli in 0u64..=500,
        budget in 0usize..3,
    ) {
        let (drop, corrupt, crash) = (
            drop_milli as f64 / 1000.0,
            corrupt_milli as f64 / 1000.0,
            crash_milli as f64 / 1000.0,
        );
        let config = rpls::schemes::spanning_tree::spanning_tree_config(
            &Configuration::plain(generators::cycle(7)),
            NodeId::new(0),
        );
        let scheme = CompiledRpls::new(rpls::schemes::spanning_tree::SpanningTreePls::new());
        let labeling = Rpls::label(&scheme, &config);
        let spec = FaultSpec::transparent()
            .with_drop(drop)
            .with_corrupt(corrupt)
            .with_crash(crash)
            .with_retry_budget(budget);
        let plan_a = FaultPlan::new(spec, fault_seed);
        let plan_b = FaultPlan::new(spec, fault_seed);
        let mut scratch = RoundScratch::new();

        let one = engine::run_randomized_faulted_with(
            &scheme, &config, &labeling, seed, &plan_a,
            StreamMode::EdgeIndependent, &mut scratch,
        );
        let two = engine::run_randomized_faulted_with(
            &scheme, &config, &labeling, seed, &plan_b,
            StreamMode::EdgeIndependent, &mut scratch,
        );
        prop_assert_eq!(one, two);

        let prepared = scheme.prepare(&config, &labeling, 4);
        let seeds: Vec<u64> = (0..4).map(|t| stats::trial_seed(seed, t)).collect();
        let mut runs: [Vec<FaultedRoundSummary>; 2] = [Vec::new(), Vec::new()];
        for block in &mut runs {
            engine::run_trials_faulted_with(
                &*prepared, &config, &seeds, &plan_a,
                StreamMode::EdgeIndependent, &mut scratch, &mut |s| block.push(s),
            );
        }
        let [first, second] = runs;
        prop_assert_eq!(first, second);

        let multi_a = engine::run_multiround_faulted_with(
            &scheme, &config, &labeling, seed, 3, &plan_a,
            StreamMode::EdgeIndependent, &mut scratch,
        );
        let multi_b = engine::run_multiround_faulted_with(
            &scheme, &config, &labeling, seed, 3, &plan_b,
            StreamMode::EdgeIndependent, &mut scratch,
        );
        prop_assert_eq!(multi_a, multi_b);
    }
}
