//! Serial ≡ parallel bit-identity, pinned across the whole estimator
//! surface: every scheme kind × {one-round, multiround, faulted, cached}
//! × both stream modes × 2/4/8 worker shards.
//!
//! The parallel runners ([`stats::estimate_par`], [`stats::sweep_par`])
//! promise more than statistical agreement — worker `w` runs exactly the
//! trials `w, w + k, …` with the same per-trial seeds the serial path
//! derives, so the merged [`Estimate`] must equal the serial one field
//! for field, whatever the shard count. These tests hold that promise
//! against every run-spec dimension at once, including the
//! shared-`PrepCache`-vs-per-worker-cache identity the cached paths rely
//! on.
#![cfg(feature = "parallel")]

use rpls::bits::BitString;
use rpls::core::engine::{MessagePattern, RunSpec, StreamMode};
use rpls::core::stats::{Estimate, EstimateOpts};
use rpls::core::{
    stats, CompiledRpls, Configuration, FaultPlan, FaultSpec, Labeling, PrepCache, ProbeSketch,
    RoundScratch, Rpls,
};
use rpls::graph::{generators, NodeId};
use rpls::schemes::acyclicity::AcyclicityPls;
use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};

const SHARDS: [usize; 3] = [2, 4, 8];
const TRIALS: usize = 96;

fn spanning_tree_workload() -> (CompiledRpls<SpanningTreePls>, Configuration, Labeling) {
    let config = spanning_tree_config(&Configuration::plain(generators::cycle(24)), NodeId::new(0));
    let scheme = CompiledRpls::new(SpanningTreePls::new());
    let labeling = Rpls::label(&scheme, &config);
    (scheme, config, labeling)
}

fn tamper(labeling: &Labeling, node: usize) -> Labeling {
    let mut out = labeling.clone();
    let flipped: BitString = out
        .get(NodeId::new(node))
        .iter()
        .enumerate()
        .map(|(i, b)| if i == 40 { !b } else { b })
        .collect();
    out.set(NodeId::new(node), flipped);
    out
}

/// The run-spec matrix of the ISSUE: one-round, multiround, faulted —
/// each under both stream modes (and one non-default pattern for good
/// measure).
fn spec_matrix(seed: u64) -> Vec<(String, RunSpec)> {
    let mut specs = Vec::new();
    for (mode_name, mode) in [
        ("edge_independent", StreamMode::EdgeIndependent),
        ("shared_per_node", StreamMode::SharedPerNode),
    ] {
        let base = RunSpec::trial(seed).with_stream_mode(mode);
        specs.push((format!("one_round/{mode_name}"), base.clone()));
        specs.push((
            format!("multiround_t3/{mode_name}"),
            base.clone().with_rounds(3),
        ));
        specs.push((
            format!("faulted_drop/{mode_name}"),
            base.clone()
                .with_faults(FaultPlan::new(FaultSpec::transparent().with_drop(0.02), 77)),
        ));
        specs.push((
            format!("faulted_mixed_multiround/{mode_name}"),
            base.clone().with_rounds(2).with_faults(FaultPlan::new(
                FaultSpec::transparent()
                    .with_corrupt(0.01)
                    .with_crash(0.005),
                78,
            )),
        ));
        specs.push((
            format!("broadcast/{mode_name}"),
            base.with_pattern(MessagePattern::Broadcast),
        ));
    }
    specs
}

fn assert_parallel_identical<S: Rpls + Sync + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    tag: &str,
) {
    let opts = EstimateOpts::new(TRIALS);
    for (name, spec) in spec_matrix(0xA11CE) {
        let serial = stats::estimate(scheme, config, labeling, &spec, &opts);
        for workers in SHARDS {
            let par = stats::estimate_par(scheme, config, labeling, &spec, &opts, Some(workers));
            assert_eq!(serial, par, "{tag}: {name} at {workers} workers");
        }
    }
}

#[test]
fn compiled_spanning_tree_honest_serial_equals_parallel() {
    let (scheme, config, labeling) = spanning_tree_workload();
    assert_parallel_identical(&scheme, &config, &labeling, "compiled_spanning_tree");
}

#[test]
fn compiled_spanning_tree_tampered_serial_equals_parallel() {
    // A tampered labeling keeps acceptance strictly between 0 and 1, so a
    // shard partitioning bug cannot hide behind an all-accepts estimate.
    let (scheme, config, labeling) = spanning_tree_workload();
    let tampered = tamper(&labeling, 5);
    let sanity = stats::estimate(
        &scheme,
        &config,
        &tampered,
        &RunSpec::trial(3),
        &EstimateOpts::new(TRIALS),
    );
    assert!(sanity.accepts < TRIALS, "tampering must reject sometimes");
    assert_parallel_identical(&scheme, &config, &tampered, "tampered_spanning_tree");
}

#[test]
fn compiled_acyclicity_serial_equals_parallel() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(21);
    let config = Configuration::plain(generators::random_sparse(40, 0, &mut rng));
    let scheme = CompiledRpls::new(AcyclicityPls);
    let labeling = Rpls::label(&scheme, &config);
    assert_parallel_identical(&scheme, &config, &labeling, "compiled_acyclicity");
}

#[test]
fn sketched_dense_scheme_serial_equals_parallel() {
    // The probe sketch draws its check indices from a per-(trial, node)
    // stream, so it must shard exactly like every other path.
    let config = spanning_tree_config(
        &Configuration::plain(generators::complete(16)),
        NodeId::new(0),
    );
    let scheme = CompiledRpls::new(SpanningTreePls::new())
        .force_dynamic()
        .with_sketch(ProbeSketch::new(4));
    let labeling = Rpls::label(&scheme, &config);
    assert_parallel_identical(&scheme, &config, &labeling, "sketched_clique16");
}

/// The cached path: a serial sweep through ONE shared cache must equal
/// the parallel sweep with one PRIVATE long-lived cache per worker, for
/// every candidate — caches move work, never results.
#[test]
fn sweep_par_matches_serial_shared_cache_sweep() {
    let (scheme, config, labeling) = spanning_tree_workload();
    let candidates: Vec<Labeling> = (0..6)
        .map(|i| {
            if i == 0 {
                labeling.clone()
            } else {
                tamper(&labeling, i)
            }
        })
        .collect();
    let opts = EstimateOpts::new(TRIALS);
    for (name, spec) in spec_matrix(0x5EED) {
        // Serial reference: one cache shared across all candidates.
        let mut scratch = RoundScratch::new();
        let mut cache = PrepCache::new();
        let serial: Vec<Estimate> = candidates
            .iter()
            .map(|l| {
                stats::estimate_with(&scheme, &config, l, &spec, &opts, &mut scratch, &mut cache)
            })
            .collect();
        for workers in SHARDS {
            let par = stats::sweep_par(&scheme, &config, &candidates, &spec, &opts, Some(workers));
            assert_eq!(serial, par, "sweep {name} at {workers} workers");
        }
    }
}

/// Cached vs uncached serial vs parallel: all three must agree exactly,
/// whatever state the shared cache is in when the estimate runs.
#[test]
fn warm_shared_cache_equals_per_worker_caches() {
    let (scheme, config, labeling) = spanning_tree_workload();
    let tampered = tamper(&labeling, 9);
    let opts = EstimateOpts::new(TRIALS);
    let spec = RunSpec::trial(0xCAFE).with_rounds(2);
    let mut scratch = RoundScratch::new();
    let mut cache = PrepCache::new();
    // Warm the cache on a different labeling first, then estimate.
    let _ = stats::estimate_with(
        &scheme,
        &config,
        &labeling,
        &spec,
        &opts,
        &mut scratch,
        &mut cache,
    );
    let warm = stats::estimate_with(
        &scheme,
        &config,
        &tampered,
        &spec,
        &opts,
        &mut scratch,
        &mut cache,
    );
    let cold = stats::estimate(&scheme, &config, &tampered, &spec, &opts);
    assert_eq!(warm, cold, "cache state must not leak into estimates");
    for workers in SHARDS {
        let par = stats::estimate_par(&scheme, &config, &tampered, &spec, &opts, Some(workers));
        assert_eq!(warm, par, "parallel vs warm-cache serial at {workers}");
    }
}
