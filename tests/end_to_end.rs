//! End-to-end pipelines over the public API: build a workload, certify it,
//! verify it, tamper with it, detect the tampering — for every scheme.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls::core::{engine, stats, CompiledRpls, Configuration, Pls, Predicate, Rpls};
use rpls::graph::{generators, EdgeId, NodeId};

#[test]
fn spanning_tree_full_pipeline() {
    use rpls::schemes::spanning_tree::*;
    let mut rng = StdRng::seed_from_u64(1);
    for n in [4usize, 12, 40] {
        let base = Configuration::plain(generators::gnp_connected(n, 0.2, &mut rng));
        let config = spanning_tree_config(&base, NodeId::new(0));
        assert!(SpanningTreePredicate::new().holds(&config));

        let det = SpanningTreePls::new();
        let labels = det.label(&config);
        assert!(engine::run_deterministic(&det, &config, &labels).accepted());

        let compiled = CompiledRpls::new(SpanningTreePls::new());
        let clabels = compiled.label(&config);
        for seed in 0..5 {
            assert!(
                engine::run_randomized(&compiled, &config, &clabels, seed)
                    .outcome
                    .accepted(),
                "one-sided scheme must accept every round"
            );
        }

        // Tamper: second root.
        let mut bad = config.clone();
        bad.state_mut(NodeId::new(n / 2))
            .set_payload(encode_pointer(None));
        if !SpanningTreePredicate::new().holds(&bad) {
            assert!(!engine::run_deterministic(&det, &bad, &labels).accepted());
            let acc = stats::acceptance_probability(&compiled, &bad, &clabels, 200, 3);
            assert!(acc < 0.4, "n={n}: tampered acceptance {acc}");
        }
    }
}

#[test]
fn mst_full_pipeline() {
    use rpls::schemes::mst::*;
    let mut rng = StdRng::seed_from_u64(2);
    let g = generators::gnp_connected(20, 0.3, &mut rng);
    let w = generators::distinct_weights(&g, &mut rng);
    let config = mst_config(&Configuration::plain(g.with_weights(&w)));
    assert!(MstPredicate::new().holds(&config));

    let labels = MstPls::new().label(&config);
    assert!(engine::run_deterministic(&MstPls::new(), &config, &labels).accepted());

    let compiled = CompiledRpls::new(MstPls::new());
    let clabels = compiled.label(&config);
    assert!(engine::run_randomized(&compiled, &config, &clabels, 9)
        .outcome
        .accepted());
    // The compiled certificate must be dramatically smaller than the label.
    let rec = engine::run_randomized(&compiled, &config, &clabels, 10);
    assert!(rec.max_certificate_bits() * 3 < labels.max_bits());
}

#[test]
fn biconnectivity_full_pipeline() {
    use rpls::schemes::biconnectivity::*;
    for g in [
        generators::wheel(12),
        generators::complete(6),
        generators::grid(3, 5),
    ] {
        let config = Configuration::plain(g);
        assert!(BiconnectivityPredicate::new().holds(&config));
        let labels = BiconnectivityPls::new().label(&config);
        assert!(engine::run_deterministic(&BiconnectivityPls::new(), &config, &labels).accepted());
    }
    // A graph with an articulation point is rejected under any of the
    // honest label assignments computed for related legal graphs.
    let config = Configuration::plain(generators::star(5));
    assert!(!BiconnectivityPredicate::new().holds(&config));
    let labels = BiconnectivityPls::new().label(&config);
    assert!(!engine::run_deterministic(&BiconnectivityPls::new(), &config, &labels).accepted());
}

#[test]
fn flow_full_pipeline() {
    use rpls::schemes::flow::*;
    let config = Configuration::plain(generators::grid(3, 4));
    // Corner to far corner of a grid: exactly 2 edge-disjoint paths.
    let predicate = FlowPredicate::new(0, 11, 2);
    assert!(predicate.holds(&config));
    let scheme = FlowPls::new(predicate);
    let labels = scheme.label(&config);
    assert!(engine::run_deterministic(&scheme, &config, &labels).accepted());

    let compiled = CompiledRpls::new(FlowPls::new(predicate));
    let clabels = compiled.label(&config);
    assert!(engine::run_randomized(&compiled, &config, &clabels, 4)
        .outcome
        .accepted());
}

#[test]
fn coloring_and_leader_pipelines() {
    use rpls::schemes::coloring::*;
    use rpls::schemes::leader::*;
    let g = generators::wheel(9);
    let colored = greedy_coloring_config(&Configuration::plain(g.clone()));
    assert!(ProperColoringPredicate::new().holds(&colored));
    let labels = ColoringPls::new().label(&colored);
    assert!(engine::run_deterministic(&ColoringPls::new(), &colored, &labels).accepted());

    let led = leader_config(&Configuration::plain(g), NodeId::new(3));
    assert!(LeaderPredicate::new().holds(&led));
    let labels = LeaderPls::new().label(&led);
    assert!(engine::run_deterministic(&LeaderPls::new(), &led, &labels).accepted());
}

#[test]
fn cycle_schemes_pipelines() {
    use rpls::schemes::cycle_at_least::*;
    use rpls::schemes::cycle_at_most::*;
    let config = Configuration::plain(generators::wheel_with_tail(16, 10));
    assert!(CycleAtLeastPredicate::new(10).holds(&config));
    let scheme = CycleAtLeastPls::new(10);
    let labels = scheme.label(&config);
    assert!(engine::run_deterministic(&scheme, &config, &labels).accepted());

    let chain = Configuration::plain(generators::chain_of_cycles(2, 6));
    assert!(CycleAtMostPredicate::new(6).holds(&chain));
    let universal = cycle_at_most_pls(6);
    let labels = universal.label(&chain);
    assert!(engine::run_deterministic(&universal, &chain, &labels).accepted());
}

#[test]
fn tampered_mst_rejected_probabilistically() {
    use rpls::schemes::mst::*;
    let g = generators::cycle(6).with_weights(&[1, 2, 3, 4, 5, 60]);
    let base = Configuration::plain(g);
    let honest = mst_config(&base);
    let bad_tree: Vec<EdgeId> = (1..6).map(EdgeId::new).collect();
    let tampered = install_tree(&base, &bad_tree);
    assert!(!MstPredicate::new().holds(&tampered));

    let compiled = CompiledRpls::new(MstPls::new());
    let honest_labels = compiled.label(&honest);
    let acc = stats::acceptance_probability(&compiled, &tampered, &honest_labels, 300, 5);
    assert!(acc < 0.4, "acceptance {acc}");
}
