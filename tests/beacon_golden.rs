//! Golden tests for the public-coin (beacon) mode: a fixed
//! `(round_id, value)` pulse reproduces a published transcript
//! bit-for-bit, across schemes and message patterns, and a third party
//! holding only the pulse re-derives it independently.
//!
//! The beacon mode is a pure seed-derivation change
//! ([`rng::beacon_seed`](rpls_core::rng::beacon_seed) feeding the ordinary
//! counter streams), so these digests pin both halves at once: the
//! derivation (domain-separated keyed hashing of the pulse) and the
//! engine's randomness layout underneath it.

use rpls::core::engine::{self, MessagePattern, RunSpec};
use rpls::core::rng::beacon_seed;
use rpls::core::{Configuration, Labeling, RoundScratch, Rpls};
use rpls::graph::{generators, NodeId};
use rpls::schemes::leader::{leader_config, LeaderPls};
use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
use rpls::schemes::uniformity::{uniform_config, UniformityPls};
use rpls_core::CompiledRpls;

/// The reference beacon pulse all pinned digests below are derived from.
const ROUND_ID: u64 = 271_828;
const VALUE: u64 = 0x3141_5926_5358_9793;

/// FNV-1a over a verification transcript: the report fields, the votes,
/// then every certificate's length and bytes in global port order — what a
/// tenant would publish for audit.
fn transcript_digest(
    report: &engine::RunReport,
    scratch: &RoundScratch,
    config: &Configuration,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for word in [
        u64::from(report.accepted),
        report.rounds as u64,
        report.decided_round as u64,
        report.max_bits_per_round as u64,
        report.total_bits as u64,
    ] {
        for b in word.to_le_bytes() {
            eat(b);
        }
    }
    for &v in scratch.votes() {
        eat(u8::from(v));
    }
    for certs in scratch.certificates().to_nested(config.port_base()) {
        for c in certs {
            for b in (c.len() as u32).to_le_bytes() {
                eat(b);
            }
            for &b in c.as_bytes() {
                eat(b);
            }
        }
    }
    h
}

/// The three compiled workloads the digests cover.
fn workloads() -> Vec<(&'static str, Box<dyn Rpls>, Configuration)> {
    let st_config =
        spanning_tree_config(&Configuration::plain(generators::cycle(8)), NodeId::new(0));
    let leader_cfg = leader_config(&Configuration::plain(generators::wheel(7)), NodeId::new(3));
    let unif_cfg = uniform_config(
        &Configuration::plain(generators::path(6)),
        &rpls::bits::BitString::from_bools((0..40).map(|i| i % 5 == 0)),
    );
    vec![
        (
            "spanning-tree",
            Box::new(CompiledRpls::new(SpanningTreePls::new())),
            st_config,
        ),
        (
            "leader",
            Box::new(CompiledRpls::new(LeaderPls::new())),
            leader_cfg,
        ),
        (
            "uniformity",
            Box::new(CompiledRpls::new(UniformityPls::new())),
            unif_cfg,
        ),
    ]
}

const PATTERNS: [MessagePattern; 4] = [
    MessagePattern::PerPort,
    MessagePattern::Broadcast,
    MessagePattern::Unicast,
    MessagePattern::KMessages(2),
];

/// Runs one beacon-seeded verification and returns its transcript digest.
fn beacon_digest(
    scheme: &dyn Rpls,
    config: &Configuration,
    labeling: &Labeling,
    pattern: MessagePattern,
) -> u64 {
    let spec = RunSpec::beacon(ROUND_ID, VALUE).with_pattern(pattern);
    let prepared = scheme.prepare(config, labeling, 1);
    let mut scratch = RoundScratch::new();
    let report = engine::run_prepared(&spec, &*prepared, config, &mut scratch);
    assert!(report.accepted, "honest beacon run must accept");
    transcript_digest(&report, &scratch, config)
}

/// The beacon spec is exactly the trial spec of the derived seed — across
/// every scheme and pattern, report and certificates alike.
#[test]
fn beacon_equals_trial_of_derived_seed_across_schemes_and_patterns() {
    let derived = beacon_seed(ROUND_ID, VALUE);
    for (name, scheme, config) in workloads() {
        let labeling = scheme.label(&config);
        let prepared = scheme.prepare(&config, &labeling, 1);
        for pattern in PATTERNS {
            let mut scratch = RoundScratch::new();
            let beacon = engine::run_prepared(
                &RunSpec::beacon(ROUND_ID, VALUE).with_pattern(pattern),
                &*prepared,
                &config,
                &mut scratch,
            );
            let beacon_certs = scratch.certificates().to_nested(config.port_base());
            let beacon_votes = scratch.votes().to_vec();
            let trial = engine::run_prepared(
                &RunSpec::trial(derived).with_pattern(pattern),
                &*prepared,
                &config,
                &mut scratch,
            );
            assert_eq!(beacon, trial, "{name} under {pattern:?}");
            assert_eq!(
                scratch.certificates().to_nested(config.port_base()),
                beacon_certs,
                "{name} under {pattern:?}"
            );
            assert_eq!(scratch.votes(), beacon_votes, "{name} under {pattern:?}");
        }
    }
}

/// The pinned transcripts: fixed pulse, fixed workloads, fixed digests.
/// These must only ever change with a deliberate, documented revision of
/// the engine's random streams or certificate layout — a silent change
/// here would break every published beacon transcript in the field.
#[test]
fn beacon_transcript_digests_are_pinned() {
    // Note the degree-capped coincidences: on the cycle and path workloads
    // every node has degree ≤ 2, so `KMessages(2)` assigns the same slots
    // as `PerPort` and their transcripts agree; the wheel workload
    // (degrees up to 6) separates them.
    let expected: [(&str, [u64; 4]); 3] = [
        (
            "spanning-tree",
            [
                0x5941_AE7A_AAE7_AC71,
                0xE5BB_1C23_4832_31AE,
                0x833D_3336_E687_94DD,
                0x5941_AE7A_AAE7_AC71,
            ],
        ),
        (
            "leader",
            [
                0x172C_4335_0CED_BFB5,
                0x4DAA_1CB2_47C6_D386,
                0x38CE_E9FF_8874_C97F,
                0x0774_EB7B_3D7F_A2F4,
            ],
        ),
        (
            "uniformity",
            [
                0xDC21_BEC1_5A82_20C8,
                0x2D12_7733_66D6_13EA,
                0xF093_D954_63A1_8910,
                0xDC21_BEC1_5A82_20C8,
            ],
        ),
    ];
    for ((name, scheme, config), (want_name, wants)) in workloads().into_iter().zip(expected) {
        assert_eq!(name, want_name);
        let labeling = scheme.label(&config);
        for (pattern, want) in PATTERNS.into_iter().zip(wants) {
            let got = beacon_digest(&*scheme, &config, &labeling, pattern);
            assert_eq!(
                got, want,
                "beacon transcript digest changed: {name} under {pattern:?} (got {got:#018X})"
            );
        }
    }
}

/// The audit story end to end: a tenant publishes only
/// `(round_id, value, digest)`; a third party — fresh process state, no
/// shared objects — rebuilds the public workload, re-derives every
/// certificate from the pulse, and reproduces the digest bit-for-bit.
/// A different pulse (or a forged labeling) does not.
#[test]
fn third_party_reverifies_from_pulse_and_transcript_only() {
    // Publisher side.
    let published: Vec<(&str, u64)> = workloads()
        .into_iter()
        .map(|(name, scheme, config)| {
            let labeling = scheme.label(&config);
            (
                name,
                beacon_digest(&*scheme, &config, &labeling, MessagePattern::PerPort),
            )
        })
        .collect();
    // Auditor side: everything rebuilt from scratch.
    for ((name, scheme, config), (pub_name, pub_digest)) in workloads().into_iter().zip(&published)
    {
        assert_eq!(&name, pub_name);
        let labeling = scheme.label(&config);
        let audit = beacon_digest(&*scheme, &config, &labeling, MessagePattern::PerPort);
        assert_eq!(audit, *pub_digest, "{name}: audit must reproduce");
        // A neighboring pulse yields a different transcript — the digest
        // really is bound to the beacon round.
        let spec = RunSpec::beacon(ROUND_ID + 1, VALUE);
        let prepared = scheme.prepare(&config, &labeling, 1);
        let mut scratch = RoundScratch::new();
        let report = engine::run_prepared(&spec, &*prepared, &config, &mut scratch);
        assert_ne!(
            transcript_digest(&report, &scratch, &config),
            *pub_digest,
            "{name}: a different pulse must not collide"
        );
    }
}

/// Beacon mode rides the t-round trade-off unchanged: multiround beacon
/// reports equal the trial reports of the derived seed.
#[test]
fn beacon_multiround_equals_derived_trial() {
    let derived = beacon_seed(ROUND_ID, VALUE);
    for (name, scheme, config) in workloads() {
        let labeling = scheme.label(&config);
        for rounds in [2usize, 4] {
            let beacon = engine::run(
                &RunSpec::beacon(ROUND_ID, VALUE).with_rounds(rounds),
                &*scheme,
                &config,
                &labeling,
            );
            let trial = engine::run(
                &RunSpec::trial(derived).with_rounds(rounds),
                &*scheme,
                &config,
                &labeling,
            );
            assert_eq!(beacon, trial, "{name} at t = {rounds}");
            assert!(beacon.accepted, "{name} at t = {rounds}");
        }
    }
}
