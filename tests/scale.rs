//! Scale checks: the engine and schemes stay correct (and the certificate
//! sizes stay tiny) on networks far larger than the unit-test sizes.
//!
//! The `million_node_*` tests are `#[ignore]`d by default — they want a
//! release build and a few GB of headroom. CI runs them in the nightly-style
//! job as `cargo test --release --test scale -- --ignored --test-threads=1`
//! (single-threaded so the allocator guard below measures one test at a
//! time).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls::core::{engine, CompiledRpls, Configuration, Pls, Rpls};
use rpls::graph::{generators, NodeId};

/// Byte-counting allocator guard: tracks live bytes and the high-water
/// mark so the million-node tests can assert peak-memory *linearity*, not
/// just "it didn't OOM".
struct CountingAlloc;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

// SAFETY: defers all allocation to `System`; only adds relaxed counter
// updates. The default `realloc` routes through `alloc`/`dealloc`, so the
// counters see every byte.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns its result plus the peak number of bytes allocated
/// *above* the baseline live at entry.
fn peak_bytes_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(baseline, Ordering::Relaxed);
    let out = f();
    let peak = PEAK_BYTES.load(Ordering::Relaxed);
    (out, peak.saturating_sub(baseline))
}

#[test]
fn compiled_acyclicity_at_n_2000() {
    use rpls::schemes::acyclicity::AcyclicityPls;
    let mut rng = StdRng::seed_from_u64(1);
    let config = Configuration::plain(generators::random_tree(2000, &mut rng));
    let scheme = CompiledRpls::new(AcyclicityPls);
    let labels = scheme.label(&config);
    let rec = engine::run_randomized(&scheme, &config, &labels, 7);
    assert!(rec.outcome.accepted());
    // Certificates stay at ~18 bits regardless of n.
    assert!(rec.max_certificate_bits() <= 20);
    // Total network traffic: certificates on both directions of each edge.
    assert_eq!(
        rec.certificates.iter().map(Vec::len).sum::<usize>(),
        2 * config.graph().edge_count()
    );
}

#[test]
fn compiled_biconnectivity_at_n_1000() {
    use rpls::schemes::biconnectivity::BiconnectivityPls;
    let config = Configuration::plain(generators::wheel(1000));
    let scheme = CompiledRpls::new(BiconnectivityPls);
    let labels = scheme.label(&config);
    let rec = engine::run_randomized(&scheme, &config, &labels, 3);
    assert!(rec.outcome.accepted());
    assert!(rec.max_certificate_bits() <= 20);
}

#[test]
fn spanning_tree_detection_latency_at_scale() {
    // One corrupted pointer among 1500 nodes: exactly the right nodes
    // reject, nobody else.
    use rpls::schemes::spanning_tree::*;
    let mut rng = StdRng::seed_from_u64(5);
    let base = Configuration::plain(generators::gnp_connected(1500, 0.004, &mut rng));
    let config = spanning_tree_config(&base, NodeId::new(0));
    let det = SpanningTreePls::new();
    let labels = det.label(&config);
    assert!(engine::run_deterministic(&det, &config, &labels).accepted());

    let mut corrupted = config.clone();
    corrupted
        .state_mut(NodeId::new(700))
        .set_payload(encode_pointer(None)); // second root
    let out = engine::run_deterministic(&det, &corrupted, &labels);
    assert!(!out.accepted());
    // Only the corrupted node itself can notice (its label says depth > 0
    // but its state now claims root).
    assert_eq!(out.rejecting_nodes(), vec![NodeId::new(700)]);
}

#[test]
fn random_sparse_mid_size_spanning_tree_accepts() {
    use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
    let mut rng = StdRng::seed_from_u64(11);
    let base = Configuration::plain(generators::random_sparse(20_000, 5_000, &mut rng));
    let config = spanning_tree_config(&base, NodeId::new(0));
    let scheme = CompiledRpls::new(SpanningTreePls::new());
    let labels = Rpls::label(&scheme, &config);
    let rec = engine::run_randomized(&scheme, &config, &labels, 17);
    assert!(rec.outcome.accepted());
    assert!(rec.max_certificate_bits() <= 24);
}

#[test]
fn power_law_mid_size_spanning_tree_accepts() {
    use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
    let mut rng = StdRng::seed_from_u64(13);
    let base = Configuration::plain(generators::power_law(10_000, 2, &mut rng));
    let config = spanning_tree_config(&base, NodeId::new(0));
    let scheme = CompiledRpls::new(SpanningTreePls::new());
    let labels = Rpls::label(&scheme, &config);
    let rec = engine::run_randomized(&scheme, &config, &labels, 19);
    assert!(rec.outcome.accepted());
    assert!(rec.max_certificate_bits() <= 24);
}

/// Builds the full verification pipeline at size `n` — random sparse tree,
/// acyclicity labels, one randomized round — and reports (accepted,
/// max certificate bits).
fn acyclicity_run_at(n: usize, rng_seed: u64, trial_seed: u64) -> (bool, usize) {
    use rpls::schemes::acyclicity::AcyclicityPls;
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let config = Configuration::plain(generators::random_sparse(n, 0, &mut rng));
    let scheme = CompiledRpls::new(AcyclicityPls);
    let labels = Rpls::label(&scheme, &config);
    let rec = engine::run_randomized(&scheme, &config, &labels, trial_seed);
    (rec.outcome.accepted(), rec.max_certificate_bits())
}

#[test]
#[ignore = "million-node run: needs a release build (CI nightly job)"]
fn million_node_sparse_tree_accepts_with_linear_memory() {
    // Quarter-scale reference first, so the linearity check compares two
    // measurements from the same process and allocator state.
    let ((ok_q, bits_q), peak_q) = peak_bytes_during(|| acyclicity_run_at(250_000, 2, 23));
    assert!(ok_q);
    let ((ok_m, bits_m), peak_m) = peak_bytes_during(|| acyclicity_run_at(1_000_000, 2, 23));
    assert!(ok_m);

    // O(1) certificates: growing n 4× moves the fingerprint field not at
    // all (the prime depends on the ~log n label length, so going from
    // 250k to 1M nodes adds at most a couple of bits).
    assert!(bits_m <= 24, "certificate bits blew up: {bits_m}");
    assert!(
        bits_m <= bits_q + 2,
        "certificate bits must be ~constant: {bits_q} bits at 250k vs {bits_m} at 1M"
    );

    // Peak-memory linearity: 4× the nodes may take at most ~4× the bytes
    // (plus slack for allocator rounding and fixed overheads). A
    // superlinear structure — the old O(n·m) adjacency scan's successor,
    // an accidental dense matrix — fails this immediately.
    assert!(
        peak_m <= 5 * peak_q,
        "peak memory superlinear: {peak_q} bytes at 250k vs {peak_m} at 1M"
    );
}

#[test]
#[ignore = "million-node run: needs a release build (CI nightly job)"]
fn million_node_power_law_spanning_tree_accepts() {
    use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
    let mut rng = StdRng::seed_from_u64(3);
    let (config, peak_build) = peak_bytes_during(|| {
        let base = Configuration::plain(generators::power_law(1_000_000, 2, &mut rng));
        spanning_tree_config(&base, NodeId::new(0))
    });
    // ~2M edges of graph + states must stay well under a GB.
    assert!(
        peak_build <= 1 << 30,
        "power-law build took {peak_build} bytes"
    );
    let scheme = CompiledRpls::new(SpanningTreePls::new());
    let labels = Rpls::label(&scheme, &config);
    let rec = engine::run_randomized(&scheme, &config, &labels, 29);
    assert!(rec.outcome.accepted());
    assert!(rec.max_certificate_bits() <= 24);
}

#[test]
fn universal_scheme_on_moderately_large_dense_graph() {
    use rpls::core::scheme::FnPredicate;
    use rpls::core::universal::universal_rpls;
    let config = Configuration::plain(generators::complete(64));
    let scheme = universal_rpls(FnPredicate::new("regular", |c: &Configuration| {
        let d = c.graph().degree(NodeId::new(0));
        c.graph().nodes().all(|v| c.graph().degree(v) == d)
    }));
    let labels = scheme.label(&config);
    // K64: labels hold the n² matrix (~4 kbit + header), certificates stay
    // logarithmic.
    let rec = engine::run_randomized(&scheme, &config, &labels, 11);
    assert!(rec.outcome.accepted());
    assert!(labels.max_bits() > 4000);
    assert!(rec.max_certificate_bits() <= 32);
}
