//! Scale checks: the engine and schemes stay correct (and the certificate
//! sizes stay tiny) on networks far larger than the unit-test sizes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls::core::{engine, CompiledRpls, Configuration, Pls, Rpls};
use rpls::graph::{generators, NodeId};

#[test]
fn compiled_acyclicity_at_n_2000() {
    use rpls::schemes::acyclicity::AcyclicityPls;
    let mut rng = StdRng::seed_from_u64(1);
    let config = Configuration::plain(generators::random_tree(2000, &mut rng));
    let scheme = CompiledRpls::new(AcyclicityPls);
    let labels = scheme.label(&config);
    let rec = engine::run_randomized(&scheme, &config, &labels, 7);
    assert!(rec.outcome.accepted());
    // Certificates stay at ~18 bits regardless of n.
    assert!(rec.max_certificate_bits() <= 20);
    // Total network traffic: certificates on both directions of each edge.
    assert_eq!(
        rec.certificates.iter().map(Vec::len).sum::<usize>(),
        2 * config.graph().edge_count()
    );
}

#[test]
fn compiled_biconnectivity_at_n_1000() {
    use rpls::schemes::biconnectivity::BiconnectivityPls;
    let config = Configuration::plain(generators::wheel(1000));
    let scheme = CompiledRpls::new(BiconnectivityPls);
    let labels = scheme.label(&config);
    let rec = engine::run_randomized(&scheme, &config, &labels, 3);
    assert!(rec.outcome.accepted());
    assert!(rec.max_certificate_bits() <= 20);
}

#[test]
fn spanning_tree_detection_latency_at_scale() {
    // One corrupted pointer among 1500 nodes: exactly the right nodes
    // reject, nobody else.
    use rpls::schemes::spanning_tree::*;
    let mut rng = StdRng::seed_from_u64(5);
    let base = Configuration::plain(generators::gnp_connected(1500, 0.004, &mut rng));
    let config = spanning_tree_config(&base, NodeId::new(0));
    let det = SpanningTreePls::new();
    let labels = det.label(&config);
    assert!(engine::run_deterministic(&det, &config, &labels).accepted());

    let mut corrupted = config.clone();
    corrupted
        .state_mut(NodeId::new(700))
        .set_payload(encode_pointer(None)); // second root
    let out = engine::run_deterministic(&det, &corrupted, &labels);
    assert!(!out.accepted());
    // Only the corrupted node itself can notice (its label says depth > 0
    // but its state now claims root).
    assert_eq!(out.rejecting_nodes(), vec![NodeId::new(700)]);
}

#[test]
fn universal_scheme_on_moderately_large_dense_graph() {
    use rpls::core::scheme::FnPredicate;
    use rpls::core::universal::universal_rpls;
    let config = Configuration::plain(generators::complete(64));
    let scheme = universal_rpls(FnPredicate::new("regular", |c: &Configuration| {
        let d = c.graph().degree(NodeId::new(0));
        c.graph().nodes().all(|v| c.graph().degree(v) == d)
    }));
    let labels = scheme.label(&config);
    // K64: labels hold the n² matrix (~4 kbit + header), certificates stay
    // logarithmic.
    let rec = engine::run_randomized(&scheme, &config, &labels, 11);
    assert!(rec.outcome.accepted());
    assert!(labels.max_bits() > 4000);
    assert!(rec.max_certificate_bits() <= 32);
}
