//! Cross-crate checks of the paper's headline claims, via the public API.

use rpls::bits::BitString;
use rpls::core::{engine, CompiledRpls, Configuration, Labeling, Pls, Rpls};
use rpls::crossing::det_attack::det_crossing_attack;
use rpls::crossing::{families, ModDistancePls};
use rpls::graph::{cycles, generators};
use rpls::schemes::acyclicity::AcyclicityPls;

/// Theorem 3.1: the compiled certificate is O(log κ) — concretely, growing
/// κ by 64× moves the certificate by only a few bits.
#[test]
fn theorem_3_1_exponential_compression() {
    let small = CompiledRpls::<AcyclicityPls>::certificate_bits_for_kappa(1 << 6);
    let large = CompiledRpls::<AcyclicityPls>::certificate_bits_for_kappa(1 << 12);
    assert!(large <= small + 2 * 6, "{small} -> {large}");
    let huge = CompiledRpls::<AcyclicityPls>::certificate_bits_for_kappa(1 << 24);
    assert!(huge <= 2 * 27);
}

/// Corollary 3.4: any predicate is verifiable with O(log n + log k) bits —
/// exercised through the cycle-at-most universal scheme, which is co-NP
/// hard yet gets logarithmic certificates.
#[test]
fn corollary_3_4_hard_predicates_get_small_certificates() {
    use rpls::schemes::cycle_at_most::cycle_at_most_rpls;
    let config = Configuration::plain(generators::chain_of_cycles(2, 5));
    let scheme = cycle_at_most_rpls(5);
    let labels = scheme.label(&config);
    let rec = engine::run_randomized(&scheme, &config, &labels, 1);
    assert!(rec.outcome.accepted());
    assert!(
        rec.max_certificate_bits() <= 30,
        "cert = {}",
        rec.max_certificate_bits()
    );
    // Labels, by contrast, hold the entire configuration.
    assert!(labels.max_bits() > 10 * rec.max_certificate_bits());
}

/// Theorem 4.4: below log₂(r)/2s bits the crossing attack always lands.
#[test]
fn theorem_4_4_attack_below_threshold() {
    let f = families::acyclicity_path(120); // r = 39
    assert!(f.det_threshold_bits() > 2.0);
    // 1 bit < threshold: attack must fully succeed.
    let scheme = ModDistancePls::new(1);
    let labeling = scheme.label(&f.config);
    let report = det_crossing_attack(&f, &labeling);
    assert!(report.succeeded());
    let crossed = report.crossed.unwrap();
    assert!(cycles::has_cycle(crossed.graph()));
    // Verdict equality both ways (the "if and only if" of Prop 4.3).
    let before = engine::run_deterministic(&scheme, &f.config, &labeling);
    let after = engine::run_deterministic(&scheme, &crossed, &labeling);
    assert_eq!(before.votes(), after.votes());
}

/// Theorem 4.4 cannot break honest Θ(log n) schemes: the collision
/// disappears once labels carry real distances.
#[test]
fn theorem_4_4_honest_schemes_survive() {
    let f = families::acyclicity_path(120);
    let labeling = AcyclicityPls.label(&f.config);
    let report = det_crossing_attack(&f, &labeling);
    assert!(report.collision.is_none());
}

/// Theorem 5.2's geometry: crossing the wheel keeps it connected but
/// destroys biconnectivity, while every degree is preserved.
#[test]
fn theorem_5_2_wheel_crossing_geometry() {
    use rpls::graph::connectivity;
    let f = families::wheel(19);
    let g = f.config.graph();
    assert!(connectivity::is_biconnected(g));
    let labeling = Labeling::new(vec![BitString::zeros(1); 19]);
    let report = det_crossing_attack(&f, &labeling);
    let crossed = report.crossed.expect("constant labels always collide");
    assert!(connectivity::is_connected(crossed.graph()));
    assert!(!connectivity::is_biconnected(crossed.graph()));
    for v in g.nodes() {
        assert_eq!(g.degree(v), crossed.graph().degree(v));
    }
}

/// Theorem 5.6's geometry: crossing the chain merges two c-cycles into a
/// 2c-cycle.
#[test]
fn theorem_5_6_chain_crossing_geometry() {
    let f = families::chain_of_cycles(3, 6);
    assert!(cycles::all_cycles_at_most(f.config.graph(), 6));
    let labeling = Labeling::new(vec![BitString::zeros(1); 18]);
    let report = det_crossing_attack(&f, &labeling);
    let crossed = report.crossed.expect("constant labels always collide");
    assert_eq!(cycles::longest_cycle(crossed.graph()), Some(12));
}

/// The engine's edge-independence (Definition 4.5): certificates on
/// different ports of one node come from independent streams — regenerating
/// a round must not correlate them, unlike the shared-stream mode.
#[test]
fn definition_4_5_edge_independence_modes_differ() {
    use rand::Rng;
    use rpls::core::{CertView, RandView};
    use rpls::graph::Port;

    struct Echo;
    impl Rpls for Echo {
        fn name(&self) -> String {
            "echo".into()
        }
        fn label(&self, config: &Configuration) -> Labeling {
            Labeling::empty(config.node_count())
        }
        fn certify(&self, _v: &CertView<'_>, _p: Port, rng: &mut dyn Rng) -> BitString {
            BitString::from_bools((0..8).map(|_| rng.next_u64() & 1 == 1))
        }
        fn verify(&self, _v: &RandView<'_>) -> bool {
            true
        }
    }

    let config = Configuration::plain(generators::complete(5));
    let labels = Labeling::empty(5);
    let independent = engine::run_randomized(&Echo, &config, &labels, 5);
    let shared = engine::run_randomized_shared(&Echo, &config, &labels, 5);
    assert_ne!(independent.certificates, shared.certificates);
    // In the independent mode, the first port's certificate equals itself
    // across repeated runs (determinism) but differs across ports.
    let again = engine::run_randomized(&Echo, &config, &labels, 5);
    assert_eq!(independent.certificates, again.certificates);
}
