//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls::bits::{BitReader, BitString, BitWriter};
use rpls::core::{engine, Configuration, Pls};
use rpls::fingerprint::EqProtocol;
use rpls::graph::crossing::cross_copies;
use rpls::graph::{connectivity, cycles, generators, mst, NodeId};

proptest! {
    /// BitString: pushing bools then iterating returns the same sequence.
    #[test]
    fn bitstring_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let s = BitString::from_bools(bits.clone());
        prop_assert_eq!(s.len(), bits.len());
        let back: Vec<bool> = s.iter().collect();
        prop_assert_eq!(back, bits);
    }

    /// BitWriter/BitReader: arbitrary (value, width) sequences round-trip.
    #[test]
    fn bit_fields_round_trip(fields in proptest::collection::vec((any::<u64>(), 1u32..=64), 1..20)) {
        let mut w = BitWriter::new();
        let mut expect = Vec::new();
        for (value, width) in &fields {
            let masked = if *width == 64 { *value } else { value & ((1u64 << width) - 1) };
            w.write_u64(masked, *width);
            expect.push((masked, *width));
        }
        let s = w.finish();
        let mut r = BitReader::new(&s);
        for (value, width) in expect {
            prop_assert_eq!(r.read_u64(width).unwrap(), value);
        }
        prop_assert!(r.is_exhausted());
    }

    /// Truncation is a prefix: every surviving bit matches the original.
    #[test]
    fn truncation_is_prefix(bits in proptest::collection::vec(any::<bool>(), 0..100), cut in 0usize..120) {
        let s = BitString::from_bools(bits);
        let t = s.truncated(cut);
        prop_assert_eq!(t.len(), s.len().min(cut));
        for i in 0..t.len() {
            prop_assert_eq!(t.bit(i), s.bit(i));
        }
    }

    /// The equality protocol never rejects equal inputs (one-sidedness),
    /// for arbitrary strings and seeds.
    #[test]
    fn eq_protocol_completeness(bits in proptest::collection::vec(any::<bool>(), 1..300), seed in any::<u64>()) {
        let s = BitString::from_bools(bits);
        let proto = EqProtocol::for_length(s.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = proto.alice_message(&s, &mut rng);
        prop_assert!(proto.bob_accepts(&s, &msg));
    }

    /// Random connected graphs: Kruskal and Borůvka agree, and the result
    /// is a spanning tree.
    #[test]
    fn kruskal_boruvka_agree(n in 3usize..24, p in 0.05f64..0.6, seed in any::<u64>(), maxw in 1u64..32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, p, &mut rng);
        let w = generators::random_weights(&g, maxw, &mut rng);
        let g = g.with_weights(&w);
        let k = mst::kruskal(&g).unwrap();
        let b = mst::boruvka(&g).unwrap();
        prop_assert_eq!(&k, &b.tree_edges);
        prop_assert!(mst::is_spanning_tree(&g, &k));
        prop_assert!(mst::is_mst(&g, &k).unwrap());
    }

    /// Crossing preserves the degree sequence and the port layout at every
    /// node, for any valid pair of independent path copies.
    #[test]
    fn crossing_preserves_local_structure(n in 9usize..60, i in 0usize..8, j in 0usize..8) {
        let g = generators::path(n);
        let r = n / 3 - 1;
        prop_assume!(r >= 2);
        let (i, j) = (i % r, j % r);
        prop_assume!(i != j);
        let edges: Vec<(NodeId, NodeId)> = (1..n / 3)
            .map(|t| (NodeId::new(3 * t), NodeId::new(3 * t + 1)))
            .collect();
        let fam = rpls::graph::crossing::IndependentCopies::single_edges(&g, &edges).unwrap();
        let crossed = cross_copies(&g, &fam, i, j).unwrap();
        prop_assert_eq!(g.node_count(), crossed.node_count());
        prop_assert_eq!(g.edge_count(), crossed.edge_count());
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), crossed.degree(v));
        }
        // Crossing two distinct path edges always creates a cycle.
        prop_assert!(cycles::has_cycle(&crossed));
    }

    /// The universal encoding round-trips arbitrary connected graphs.
    #[test]
    fn universal_encoding_round_trip(n in 2usize..24, p in 0.0f64..0.5, seed in any::<u64>()) {
        use rpls::core::universal::{decode_configuration, encode_configuration};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, p, &mut rng);
        let config = Configuration::plain(g);
        let enc = encode_configuration(&config);
        let dec = decode_configuration(&enc).expect("decodes");
        prop_assert_eq!(dec.node_count(), config.node_count());
        prop_assert_eq!(
            dec.graph().sorted_edge_list(),
            config.graph().sorted_edge_list()
        );
    }

    /// The acyclicity scheme is complete on arbitrary random trees with
    /// arbitrary identity assignments.
    #[test]
    fn acyclicity_complete_on_random_trees(n in 2usize..40, seed in any::<u64>()) {
        use rpls::schemes::acyclicity::AcyclicityPls;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        // Shuffled ids.
        let mut ids: Vec<u64> = (0..n as u64).map(|i| i * 7 + 3).collect();
        for i in (1..n).rev() {
            use rand::RngExt;
            let j = rng.random_range(0..=i);
            ids.swap(i, j);
        }
        let config = Configuration::with_ids(g, &ids);
        let labels = AcyclicityPls.label(&config);
        prop_assert!(engine::run_deterministic(&AcyclicityPls, &config, &labels).accepted());
    }

    /// BFS and DFS reach every node of a connected graph, and DFS spans
    /// nest properly.
    #[test]
    fn traversals_cover_connected_graphs(n in 2usize..30, p in 0.05f64..0.5, seed in any::<u64>()) {
        use rpls::graph::traversal;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, p, &mut rng);
        prop_assert!(connectivity::is_connected(&g));
        let bfs = traversal::bfs(&g, NodeId::new(0));
        prop_assert_eq!(bfs.reached_count(), n);
        let dfs = traversal::dfs(&g, NodeId::new(0));
        prop_assert_eq!(dfs.order.len(), n);
        for v in g.nodes() {
            let (lo, hi) = dfs.span[v.index()].unwrap();
            prop_assert_eq!(lo, dfs.preorder[v.index()].unwrap());
            prop_assert!(hi > lo);
        }
    }

    /// Biconnectivity scheme completeness on random biconnected graphs
    /// (dense G(n, p) conditioned on biconnectivity).
    #[test]
    fn biconnectivity_complete_on_random_biconnected(n in 4usize..20, seed in any::<u64>()) {
        use rpls::schemes::biconnectivity::BiconnectivityPls;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.6, &mut rng);
        prop_assume!(connectivity::is_biconnected(&g));
        let config = Configuration::plain(g);
        let labels = BiconnectivityPls.label(&config);
        let out = engine::run_deterministic(&BiconnectivityPls, &config, &labels);
        prop_assert!(out.accepted(), "rejecting: {:?}", out.rejecting_nodes());
    }
}
