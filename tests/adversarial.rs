//! Adversarial soundness probes across schemes: on illegal configurations,
//! exhaustive and randomized forging must fail against honest schemes —
//! and must succeed against the deliberately under-provisioned ones.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls::core::{
    adversary, engine, stats, CompiledRpls, Configuration, Labeling, Predicate, Rpls,
};
use rpls::graph::{generators, NodeId};

#[test]
fn acyclicity_on_c3_unforgeable_exhaustively() {
    use rpls::schemes::acyclicity::AcyclicityPls;
    let config = Configuration::plain(generators::cycle(3));
    assert!(adversary::exhaustive_forge(&AcyclicityPls, &config, 4).is_none());
}

#[test]
fn leader_zero_and_two_unforgeable() {
    use rpls::schemes::leader::*;
    let base = Configuration::plain(generators::cycle(3));
    let mut none = base.clone();
    for v in base.graph().nodes() {
        none.state_mut(v).set_payload(encode_flag(false));
    }
    assert!(adversary::exhaustive_forge(&LeaderPls::new(), &none, 3).is_none());

    let mut two = leader_config(&base, NodeId::new(0));
    two.state_mut(NodeId::new(2)).set_payload(encode_flag(true));
    assert!(adversary::exhaustive_forge(&LeaderPls::new(), &two, 3).is_none());
}

#[test]
fn spanning_tree_cycle_pointers_resist_hill_climbing() {
    use rpls::schemes::spanning_tree::*;
    let g = generators::cycle(8);
    let mut config = Configuration::plain(g);
    for i in 0..8 {
        config
            .state_mut(NodeId::new(i))
            .set_payload(encode_pointer(Some(rpls::graph::Port::from_rank(0))));
    }
    assert!(!SpanningTreePredicate::new().holds(&config));
    let mut rng = StdRng::seed_from_u64(4);
    let report = adversary::random_forge(&SpanningTreePls::new(), &config, 96, 25, 400, &mut rng);
    assert!(!report.succeeded(), "forged a rootless pointer cycle");
}

#[test]
fn biconnectivity_star_resists_hill_climbing() {
    use rpls::schemes::biconnectivity::BiconnectivityPls;
    let config = Configuration::plain(generators::star(4));
    let mut rng = StdRng::seed_from_u64(5);
    let report = adversary::random_forge(&BiconnectivityPls::new(), &config, 50, 25, 400, &mut rng);
    assert!(!report.succeeded());
}

#[test]
fn compiled_schemes_resist_rpls_forging() {
    use rpls::schemes::uniformity::*;
    // An illegal instance: one deviating payload on a path.
    let base = Configuration::plain(generators::path(4));
    let payload = rpls::bits::BitString::from_bools((0..32).map(|i| i % 2 == 0));
    let mut config = uniform_config(&base, &payload);
    config
        .state_mut(NodeId::new(1))
        .set_payload(rpls::bits::BitString::zeros(32));
    assert!(!UniformityPredicate::new().holds(&config));

    let scheme = CompiledRpls::new(UniformityPls::new());
    let mut rng = StdRng::seed_from_u64(6);
    let report = adversary::random_forge_rpls(&scheme, &config, 40, 6, 40, 60, 11, &mut rng);
    // One-sided soundness: no labeling should push acceptance past 1/2.
    assert!(
        report.acceptance <= 0.5,
        "forged acceptance {}",
        report.acceptance
    );
}

#[test]
fn under_provisioned_scheme_is_forgeable_where_theory_says_so() {
    // Sanity check of the adversary itself: the 1-bit modular-distance
    // scheme accepts some labeling on an *even* cycle (alternating bits),
    // and the forger finds it.
    use rpls::crossing::ModDistancePls;
    let config = Configuration::plain(generators::cycle(6));
    let scheme = ModDistancePls::new(1);
    let found = adversary::exhaustive_forge(&scheme, &config, 1);
    assert!(
        found.is_some(),
        "alternating labels must fool the mod-2 check"
    );
    let labeling = found.unwrap();
    assert!(engine::run_deterministic(&scheme, &config, &labeling).accepted());
}

#[test]
fn compiled_acyclicity_sound_against_replayed_labels() {
    use rpls::schemes::acyclicity::AcyclicityPls;
    // Replay path labels on a same-size cycle: every node has consistent
    // replicas except where the structure differs; acceptance stays low.
    let path_conf = Configuration::plain(generators::path(8));
    let cycle_conf = Configuration::plain(generators::cycle(8));
    let scheme = CompiledRpls::new(AcyclicityPls);
    let labels = scheme.label(&path_conf);
    // Degrees differ (endpoints), so the replicated labels do not even
    // parse consistently on the cycle; acceptance must be ~0.
    let acc = stats::acceptance_probability(&scheme, &cycle_conf, &labels, 200, 12);
    assert!(acc < 0.05, "acceptance {acc}");
    let _ = Labeling::empty(0);
}
