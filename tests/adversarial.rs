//! Adversarial soundness probes across schemes: on illegal configurations,
//! exhaustive and randomized forging must fail against honest schemes —
//! and must succeed against the deliberately under-provisioned ones.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls::core::{
    adversary, engine, stats, CompiledRpls, Configuration, Labeling, Predicate, Rpls,
};
use rpls::graph::{generators, NodeId};

#[test]
fn acyclicity_on_c3_unforgeable_exhaustively() {
    use rpls::schemes::acyclicity::AcyclicityPls;
    let config = Configuration::plain(generators::cycle(3));
    assert!(adversary::exhaustive_forge(&AcyclicityPls, &config, 4).is_none());
}

#[test]
fn leader_zero_and_two_unforgeable() {
    use rpls::schemes::leader::*;
    let base = Configuration::plain(generators::cycle(3));
    let mut none = base.clone();
    for v in base.graph().nodes() {
        none.state_mut(v).set_payload(encode_flag(false));
    }
    assert!(adversary::exhaustive_forge(&LeaderPls::new(), &none, 3).is_none());

    let mut two = leader_config(&base, NodeId::new(0));
    two.state_mut(NodeId::new(2)).set_payload(encode_flag(true));
    assert!(adversary::exhaustive_forge(&LeaderPls::new(), &two, 3).is_none());
}

#[test]
fn spanning_tree_cycle_pointers_resist_hill_climbing() {
    use rpls::schemes::spanning_tree::*;
    let g = generators::cycle(8);
    let mut config = Configuration::plain(g);
    for i in 0..8 {
        config
            .state_mut(NodeId::new(i))
            .set_payload(encode_pointer(Some(rpls::graph::Port::from_rank(0))));
    }
    assert!(!SpanningTreePredicate::new().holds(&config));
    let mut rng = StdRng::seed_from_u64(4);
    let report = adversary::random_forge(&SpanningTreePls::new(), &config, 96, 25, 400, &mut rng);
    assert!(!report.succeeded(), "forged a rootless pointer cycle");
}

#[test]
fn biconnectivity_star_resists_hill_climbing() {
    use rpls::schemes::biconnectivity::BiconnectivityPls;
    let config = Configuration::plain(generators::star(4));
    let mut rng = StdRng::seed_from_u64(5);
    let report = adversary::random_forge(&BiconnectivityPls::new(), &config, 50, 25, 400, &mut rng);
    assert!(!report.succeeded());
}

#[test]
fn compiled_schemes_resist_rpls_forging() {
    use rpls::schemes::uniformity::*;
    // An illegal instance: one deviating payload on a path.
    let base = Configuration::plain(generators::path(4));
    let payload = rpls::bits::BitString::from_bools((0..32).map(|i| i % 2 == 0));
    let mut config = uniform_config(&base, &payload);
    config
        .state_mut(NodeId::new(1))
        .set_payload(rpls::bits::BitString::zeros(32));
    assert!(!UniformityPredicate::new().holds(&config));

    let scheme = CompiledRpls::new(UniformityPls::new());
    let mut rng = StdRng::seed_from_u64(6);
    let report = adversary::random_forge_rpls(&scheme, &config, 40, 6, 40, 60, 11, &mut rng);
    // One-sided soundness: no labeling should push acceptance past 1/2.
    assert!(
        report.acceptance <= 0.5,
        "forged acceptance {}",
        report.acceptance
    );
}

#[test]
fn under_provisioned_scheme_is_forgeable_where_theory_says_so() {
    // Sanity check of the adversary itself: the 1-bit modular-distance
    // scheme accepts some labeling on an *even* cycle (alternating bits),
    // and the forger finds it.
    use rpls::crossing::ModDistancePls;
    let config = Configuration::plain(generators::cycle(6));
    let scheme = ModDistancePls::new(1);
    let found = adversary::exhaustive_forge(&scheme, &config, 1);
    assert!(
        found.is_some(),
        "alternating labels must fool the mod-2 check"
    );
    let labeling = found.unwrap();
    assert!(engine::run_deterministic(&scheme, &config, &labeling).accepted());
}

#[test]
fn compiled_acyclicity_sound_against_replayed_labels() {
    use rpls::schemes::acyclicity::AcyclicityPls;
    // Replay path labels on a same-size cycle: every node has consistent
    // replicas except where the structure differs; acceptance stays low.
    let path_conf = Configuration::plain(generators::path(8));
    let cycle_conf = Configuration::plain(generators::cycle(8));
    let scheme = CompiledRpls::new(AcyclicityPls);
    let labels = scheme.label(&path_conf);
    // Degrees differ (endpoints), so the replicated labels do not even
    // parse consistently on the cycle; acceptance must be ~0.
    let acc = stats::acceptance_probability(&scheme, &cycle_conf, &labels, 200, 12);
    assert!(acc < 0.05, "acceptance {acc}");
    let _ = Labeling::empty(0);
}

/// Verifiers must be *total*: arbitrary garbage labelings and arbitrary
/// garbage certificates may make them reject, never panic. Every scheme in
/// `rpls-schemes` is pushed through every verifier surface — the
/// deterministic verifier, the compiled randomized verifier (unprepared,
/// prepared-scalar, and batched trial paths, in both stream modes), the
/// certificate-corruption wrapper below, and the `ExchangeLabels`
/// baseline.
mod never_panic {
    use proptest::collection::vec;
    use proptest::prelude::*;
    use rand::Rng;
    use rpls::bits::BitString;
    use rpls::core::scheme::ExchangeLabels;
    use rpls::core::{engine, stats, CompiledRpls, Configuration, Labeling, Pls, Rpls};
    use rpls::core::{CertView, PreparedRpls, RandView, Received};
    use rpls::graph::{generators, NodeId, Port};

    /// Mangles a just-generated certificate in place, drawing the
    /// corruption pattern from the round's own stream: bit flips,
    /// truncation, appended garbage, or wholesale replacement.
    fn corrupt(out: &mut BitString, rng: &mut dyn Rng) {
        match rng.next_u64() % 4 {
            0 => {
                // Flip one bit.
                if out.is_empty() {
                    out.push(true);
                    return;
                }
                let target = (rng.next_u64() % out.len() as u64) as usize;
                let flipped: BitString = out
                    .iter()
                    .enumerate()
                    .map(|(i, b)| if i == target { !b } else { b })
                    .collect();
                *out = flipped;
            }
            1 => {
                // Truncate to a random prefix.
                let keep = (rng.next_u64() % (out.len() as u64 + 1)) as usize;
                *out = out.truncated(keep);
            }
            2 => {
                // Append garbage bits.
                let extra = (rng.next_u64() % 24) as u32 + 1;
                let bits = rng.next_u64() & ((1 << extra) - 1);
                out.push_u64(bits, extra);
            }
            _ => {
                // Replace wholesale (possibly with the empty string).
                let len = (rng.next_u64() % 48) as u32;
                out.clear();
                if len > 0 {
                    out.push_u64(rng.next_u64() & ((1u64 << len) - 1), len);
                }
            }
        }
    }

    /// Wraps a randomized scheme so every certificate it emits arrives
    /// corrupted — the "arbitrary garbage certificates" half of the threat
    /// model. Both the unprepared path and the prepared path corrupt, so
    /// prepared verifiers face the same garbage.
    struct CorruptingRpls<S> {
        inner: S,
    }

    impl<S: Rpls> Rpls for CorruptingRpls<S> {
        fn name(&self) -> String {
            format!("corrupting({})", self.inner.name())
        }
        fn label(&self, config: &Configuration) -> Labeling {
            self.inner.label(config)
        }
        fn certify(&self, view: &CertView<'_>, port: Port, rng: &mut dyn Rng) -> BitString {
            let mut out = self.inner.certify(view, port, rng);
            corrupt(&mut out, rng);
            out
        }
        fn certify_into(
            &self,
            view: &CertView<'_>,
            port: Port,
            rng: &mut dyn Rng,
            out: &mut BitString,
        ) {
            self.inner.certify_into(view, port, rng, out);
            corrupt(out, rng);
        }
        fn verify(&self, view: &RandView<'_>) -> bool {
            self.inner.verify(view)
        }
        fn prepare<'a>(
            &'a self,
            config: &'a Configuration,
            labeling: &'a Labeling,
            rounds_hint: usize,
        ) -> Box<dyn PreparedRpls + 'a> {
            Box::new(CorruptingPrepared {
                inner: self.inner.prepare(config, labeling, rounds_hint),
            })
        }
    }

    struct CorruptingPrepared<'a> {
        inner: Box<dyn PreparedRpls + 'a>,
    }

    impl PreparedRpls for CorruptingPrepared<'_> {
        fn certify_into(&self, node: NodeId, port: Port, rng: &mut dyn Rng, out: &mut BitString) {
            self.inner.certify_into(node, port, rng, out);
            corrupt(out, rng);
        }
        fn verify(&self, node: NodeId, received: &Received<'_>) -> bool {
            self.inner.verify(node, received)
        }
    }

    /// Drives one deterministic scheme through every verifier surface with
    /// the given garbage label pool — including the cached-prepare path,
    /// against a `PrepCache` shared across schemes, configurations, and
    /// labelings (`cache`). Nothing is asserted about the verdicts — only
    /// that each call returns at all and the shared cache stays within its
    /// memory bounds.
    fn hammer<S: Pls + Clone>(
        scheme: S,
        config: &Configuration,
        garbage: &[BitString],
        seed: u64,
        cache: &mut rpls::core::PrepCache,
    ) {
        let n = config.node_count();
        let labeling: Labeling = (0..n).map(|i| garbage[i % garbage.len()].clone()).collect();

        // Deterministic verifier on garbage labels.
        let _ = engine::run_deterministic(&scheme, config, &labeling);

        // Compiled verifier on garbage labels: unprepared round, then the
        // prepared estimator path (which routes through the batched trial
        // engine), then the batched hook driven directly — whole blocks of
        // trials against corrupted replicas must reject, never panic.
        let compiled = CompiledRpls::new(scheme.clone());
        let _ = engine::run_randomized(&compiled, config, &labeling, seed);
        let _ = stats::acceptance_probability(&compiled, config, &labeling, 2, seed);
        {
            use rpls::core::engine::StreamMode;
            use rpls::core::{PrepCache, RoundScratch};
            let prepared = Rpls::prepare(&compiled, config, &labeling, 3);
            // The cached-prepare twin, sharing arbitrary earlier state:
            // garbage labelings must neither panic it nor blow its memory
            // bounds, and whole blocks of trials must emit the same
            // summaries the fresh preparation emits.
            let cached = compiled.prepare_cached(config, &labeling, 3, cache);
            let mut scratch = RoundScratch::new();
            for mode in [StreamMode::EdgeIndependent, StreamMode::SharedPerNode] {
                let mut fresh_out = Vec::new();
                engine::run_trials_batched_with(
                    &*prepared,
                    config,
                    &[seed, seed ^ 5, seed ^ 9],
                    mode,
                    &mut scratch,
                    &mut |s| fresh_out.push(s),
                );
                let mut cached_out = Vec::new();
                engine::run_trials_batched_with(
                    &*cached,
                    config,
                    &[seed, seed ^ 5, seed ^ 9],
                    mode,
                    &mut scratch,
                    &mut |s| cached_out.push(s),
                );
                assert_eq!(fresh_out, cached_out, "cached vs fresh summaries");
            }
            let mut cached_estimate_scratch = RoundScratch::new();
            let _ = stats::acceptance_probability_cached(
                &compiled,
                config,
                &labeling,
                2,
                seed ^ 4,
                &mut cached_estimate_scratch,
                cache,
            );
            assert!(cache.retained_key_bits() <= PrepCache::KEY_BITS_BUDGET);
            assert!(cache.table_slots_reserved() <= PrepCache::TABLE_SLOT_BUDGET);

            // The t-round trade-off engine on the same garbage: hostile
            // round counts (including absurd ones — the chunked planner
            // must stay O(label bits), never O(t)) and both stream modes
            // may reject, never panic or hang; cached and fresh
            // preparations must emit identical multi-round summaries.
            for rounds in [1usize, 2, 7, 129, usize::MAX] {
                for mode in [StreamMode::EdgeIndependent, StreamMode::SharedPerNode] {
                    let mut fresh_out = Vec::new();
                    engine::run_multiround_trials_batched_with(
                        &*prepared,
                        config,
                        &[seed, seed ^ 11],
                        rounds,
                        mode,
                        &mut scratch,
                        &mut |s| fresh_out.push(s),
                    );
                    let mut cached_out = Vec::new();
                    engine::run_multiround_trials_batched_with(
                        &*cached,
                        config,
                        &[seed, seed ^ 11],
                        rounds,
                        mode,
                        &mut scratch,
                        &mut |s| cached_out.push(s),
                    );
                    assert_eq!(
                        fresh_out, cached_out,
                        "cached vs fresh multi-round summaries (t = {rounds})"
                    );
                    for s in &fresh_out {
                        assert!(s.decided_round >= 1 && s.decided_round <= s.rounds);
                    }
                }
            }
            // The fault-injection twins on the same garbage: hostile
            // fault rates (including total loss) and hostile round
            // counts may degrade the verdict, never panic or hang —
            // and cached and fresh preparations must emit identical
            // faulted summaries.
            {
                use rpls::core::{FaultPlan, FaultSpec};
                let hostile = [
                    FaultSpec::transparent(),
                    FaultSpec::transparent().with_drop(1.0),
                    FaultSpec::transparent().with_crash(1.0),
                    FaultSpec::transparent()
                        .with_drop(0.4)
                        .with_corrupt(0.4)
                        .with_duplicate(0.4)
                        .with_crash(0.3)
                        .with_retry_budget(2),
                ];
                for spec in hostile {
                    let plan = FaultPlan::new(spec, seed ^ 0xFA);
                    let mut fresh_out = Vec::new();
                    engine::run_trials_faulted_with(
                        &*prepared,
                        config,
                        &[seed, seed ^ 13],
                        &plan,
                        StreamMode::EdgeIndependent,
                        &mut scratch,
                        &mut |s| fresh_out.push(s),
                    );
                    let mut cached_out = Vec::new();
                    engine::run_trials_faulted_with(
                        &*cached,
                        config,
                        &[seed, seed ^ 13],
                        &plan,
                        StreamMode::EdgeIndependent,
                        &mut scratch,
                        &mut |s| cached_out.push(s),
                    );
                    assert_eq!(fresh_out, cached_out, "cached vs fresh faulted summaries");
                    for rounds in [1usize, 5, usize::MAX] {
                        let mut out = Vec::new();
                        engine::run_multiround_trials_faulted_with(
                            &*prepared,
                            config,
                            &[seed ^ 17],
                            rounds,
                            &plan,
                            StreamMode::EdgeIndependent,
                            &mut scratch,
                            &mut |s| out.push(s),
                        );
                    }
                    let _ = engine::run_randomized_faulted_with(
                        &compiled,
                        config,
                        &labeling,
                        seed ^ 21,
                        &plan,
                        StreamMode::EdgeIndependent,
                        &mut scratch,
                    );
                }
            }

            let _ = engine::run_multiround_with(
                &compiled,
                config,
                &labeling,
                seed ^ 6,
                3,
                StreamMode::EdgeIndependent,
                &mut scratch,
            );
            let _ = stats::multiround_acceptance_probability(
                &compiled,
                config,
                &labeling,
                2,
                2,
                seed ^ 7,
            );
            let profile =
                stats::rounds_to_reject_profile(&compiled, config, &labeling, 3, 2, seed ^ 8);
            assert_eq!(profile.trials(), 2);
        }

        // Honest labels but corrupted certificates, then garbage labels
        // *and* corrupted certificates, through both paths.
        let honest = Rpls::label(&compiled, config);
        let corrupting = CorruptingRpls { inner: compiled };
        let _ = engine::run_randomized(&corrupting, config, &honest, seed);
        let _ = stats::acceptance_probability(&corrupting, config, &honest, 2, seed ^ 1);
        let _ = stats::acceptance_probability(&corrupting, config, &labeling, 2, seed ^ 2);

        // The κ-bit baseline wrapper: garbage labels double as garbage
        // certificates (the certificate *is* the label), corrupted on top.
        let exchanging = CorruptingRpls {
            inner: ExchangeLabels::new(scheme),
        };
        let _ = engine::run_randomized(&exchanging, config, &labeling, seed);
        let _ = stats::acceptance_probability(&exchanging, config, &labeling, 2, seed ^ 3);
    }

    /// Assembles the garbage label pool from proptest's raw material.
    fn pool(words: &[(u64, u32)]) -> Vec<BitString> {
        words
            .iter()
            .map(|&(value, width)| {
                let mut b = BitString::new();
                let width = width % 65;
                if width > 0 {
                    let masked = if width == 64 {
                        value
                    } else {
                        value & ((1u64 << width) - 1)
                    };
                    b.push_u64(masked, width);
                }
                b
            })
            .collect()
    }

    /// Regression: the prepared `ExchangeLabels` verdict must follow the
    /// *delivered* certificates, not the labeling it was prepared for —
    /// a wrapper corrupting certificates in flight must see identical
    /// verdicts on the prepared and unprepared paths.
    #[test]
    fn corrupting_wrapper_prepared_path_matches_unprepared() {
        use rpls::core::engine::StreamMode;
        use rpls::core::RoundScratch;
        use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
        let config =
            spanning_tree_config(&Configuration::plain(generators::cycle(6)), NodeId::new(0));
        let scheme = CorruptingRpls {
            inner: ExchangeLabels::new(SpanningTreePls::new()),
        };
        let labeling = Rpls::label(&scheme, &config);
        let prepared = scheme.prepare(&config, &labeling, 64);
        let mut unprepared_scratch = RoundScratch::new();
        let mut prepared_scratch = RoundScratch::new();
        for seed in 0..25u64 {
            let a = engine::run_randomized_with(
                &scheme,
                &config,
                &labeling,
                seed,
                StreamMode::EdgeIndependent,
                &mut unprepared_scratch,
            );
            let b = engine::run_randomized_prepared_with(
                &*prepared,
                &config,
                seed,
                StreamMode::EdgeIndependent,
                &mut prepared_scratch,
            );
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(
                unprepared_scratch.votes(),
                prepared_scratch.votes(),
                "seed {seed}"
            );
        }
    }

    /// Wraps a randomized scheme so every certificate arrives truncated
    /// to a fixed prefix — including the empty one. Unlike
    /// [`CorruptingRpls`] the damage is deterministic, so the test can
    /// assert the verdict, not just the absence of a panic.
    struct TruncatingRpls<S> {
        inner: S,
        keep: usize,
    }

    impl<S: Rpls> Rpls for TruncatingRpls<S> {
        fn name(&self) -> String {
            format!("truncating({}, {})", self.inner.name(), self.keep)
        }
        fn label(&self, config: &Configuration) -> Labeling {
            self.inner.label(config)
        }
        fn certify(&self, view: &CertView<'_>, port: Port, rng: &mut dyn Rng) -> BitString {
            self.inner.certify(view, port, rng).truncated(self.keep)
        }
        fn certify_into(
            &self,
            view: &CertView<'_>,
            port: Port,
            rng: &mut dyn Rng,
            out: &mut BitString,
        ) {
            self.inner.certify_into(view, port, rng, out);
            *out = out.truncated(self.keep);
        }
        fn verify(&self, view: &RandView<'_>) -> bool {
            self.inner.verify(view)
        }
        fn prepare<'a>(
            &'a self,
            config: &'a Configuration,
            labeling: &'a Labeling,
            rounds_hint: usize,
        ) -> Box<dyn PreparedRpls + 'a> {
            Box::new(TruncatingPrepared {
                inner: self.inner.prepare(config, labeling, rounds_hint),
                keep: self.keep,
            })
        }
    }

    struct TruncatingPrepared<'a> {
        inner: Box<dyn PreparedRpls + 'a>,
        keep: usize,
    }

    impl PreparedRpls for TruncatingPrepared<'_> {
        fn certify_into(&self, node: NodeId, port: Port, rng: &mut dyn Rng, out: &mut BitString) {
            self.inner.certify_into(node, port, rng, out);
            *out = out.truncated(self.keep);
        }
        fn verify(&self, node: NodeId, received: &Received<'_>) -> bool {
            self.inner.verify(node, received)
        }
    }

    /// Regression for the total-read contract on delivered certificates:
    /// a certificate truncated below the bits the verifier wants to read
    /// (down to and including zero bits) must yield a reject vote — never
    /// a panic — on the unprepared and prepared paths alike.
    #[test]
    fn truncated_certificates_reject_never_panic() {
        use rpls::core::engine::StreamMode;
        use rpls::core::RoundScratch;
        use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
        let config =
            spanning_tree_config(&Configuration::plain(generators::cycle(6)), NodeId::new(0));
        let mut scratch = RoundScratch::new();
        for keep in [0usize, 1, 2, 3] {
            let scheme = TruncatingRpls {
                inner: CompiledRpls::new(SpanningTreePls::new()),
                keep,
            };
            let labeling = Rpls::label(&scheme, &config);
            let prepared = scheme.prepare(&config, &labeling, 8);
            for seed in 0..8u64 {
                let a = engine::run_randomized_with(
                    &scheme,
                    &config,
                    &labeling,
                    seed,
                    StreamMode::EdgeIndependent,
                    &mut scratch,
                );
                assert!(
                    !a.accepted,
                    "a {keep}-bit prefix of a fingerprint certificate must reject (seed {seed})"
                );
                assert!(scratch.votes().iter().all(|&v| !v), "every vote rejects");
                let b = engine::run_randomized_prepared_with(
                    &*prepared,
                    &config,
                    seed,
                    StreamMode::EdgeIndependent,
                    &mut scratch,
                );
                assert_eq!(a, b, "prepared path agrees (keep {keep}, seed {seed})");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn no_scheme_verifier_panics_on_garbage(
            words in vec((any::<u64>(), 0u32..=64), 1..6),
            seed in any::<u64>(),
        ) {
            let garbage = pool(&words);
            let plain5 = Configuration::plain(generators::cycle(5));
            let path5 = Configuration::plain(generators::path(5));
            // One preparation cache shared across every scheme,
            // configuration, and garbage labeling below — the cached
            // entries are content-keyed, so cross-pollination must be
            // harmless by construction (and memory stays bounded, checked
            // inside each hammer pass).
            let mut cache = rpls::core::PrepCache::new();

            use rpls::schemes::*;
            hammer(acyclicity::AcyclicityPls::new(), &path5, &garbage, seed, &mut cache);
            hammer(biconnectivity::BiconnectivityPls::new(), &plain5, &garbage, seed, &mut cache);
            hammer(
                coloring::ColoringPls::new(),
                &coloring::greedy_coloring_config(&plain5),
                &garbage,
                seed,
                &mut cache,
            );
            hammer(cycle_at_least::CycleAtLeastPls::new(4), &plain5, &garbage, seed, &mut cache);
            hammer(
                leader::LeaderPls::new(),
                &leader::leader_config(&plain5, NodeId::new(2)),
                &garbage,
                seed,
                &mut cache,
            );
            hammer(
                spanning_tree::SpanningTreePls::new(),
                &spanning_tree::spanning_tree_config(&plain5, NodeId::new(0)),
                &garbage,
                seed,
                &mut cache,
            );
            hammer(
                uniformity::UniformityPls::new(),
                &uniformity::uniform_config(&plain5, &BitString::zeros(16)),
                &garbage,
                seed,
                &mut cache,
            );
            hammer(
                mst::MstPls::new(),
                &mst::mst_config(&Configuration::plain(
                    generators::cycle(5).with_weights(&[4, 1, 5, 2, 3]),
                )),
                &garbage,
                seed,
                &mut cache,
            );

            // Terminals 0 and 3 are non-adjacent on a 6-cycle, giving two
            // edge-disjoint (and vertex-disjoint) paths.
            let cyc6 = Configuration::plain(generators::cycle(6));
            hammer(
                flow::FlowPls::new(flow::FlowPredicate::new(0, 3, 2)),
                &cyc6,
                &garbage,
                seed,
                &mut cache,
            );
            hammer(
                vertex_connectivity::StConnectivityPls::new(
                    vertex_connectivity::StConnectivityPredicate::new(0, 3, 2),
                ),
                &cyc6,
                &garbage,
                seed,
                &mut cache,
            );

            // The universal-only predicates ride on the Lemma 3.3 scheme.
            hammer(cycle_at_most::cycle_at_most_pls(6), &plain5, &garbage, seed, &mut cache);
            hammer(symmetry::symmetry_pls(), &path5, &garbage, seed, &mut cache);
        }
    }
}
