//! Property coverage for the dense-graph machinery: the degree-bucketed
//! CSR ([`DegreeBuckets`]) and the per-node probe sketch
//! ([`ProbeSketch`]).
//!
//! The load-bearing property is the **soundness oracle**: a sketched
//! verifier evaluates a *subset* of the full plan's edge checks at the
//! *same* probe points (the sketch draws indices from its own stream, so
//! probe values are untouched), hence a sketched **rejection implies a
//! full-probe rejection on the same seed**. One-sidedness survives
//! subsampling; only the detection probability shrinks.

use proptest::prelude::*;
use rpls::bits::BitString;
use rpls::core::engine::{self, StreamMode};
use rpls::core::{
    CompiledRpls, Configuration, DegreeBuckets, Labeling, ProbeSketch, RoundScratch, Rpls,
};
use rpls::graph::{generators, GraphBuilder, NodeId};
use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};

// ---------------------------------------------------------------------------
// DegreeBuckets: power-of-two bucketed CSR over node degrees.
// ---------------------------------------------------------------------------

proptest! {
    /// On arbitrary random graphs (isolated nodes included), the bucketed
    /// CSR is a partition: `order` is a permutation of the nodes, every
    /// node lands in the bucket its degree dictates, and bucket `b ≥ 2`
    /// holds exactly the degrees in `(2^(b-2), 2^(b-1)]`.
    #[test]
    fn degree_buckets_partition_random_graphs(
        n in 1usize..48,
        raw_edges in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..160),
    ) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in raw_edges {
            let (u, v) = (u as usize % n, v as usize % n);
            if u != v {
                // Duplicate edges are rejected by the builder; skipping the
                // error keeps the generator unconstrained.
                let _ = b.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
        let g = b.finish().expect("auto-assigned ports never collide");

        let buckets = DegreeBuckets::new(&g);

        // Permutation: every node exactly once across all buckets.
        let mut seen = vec![false; n];
        for u in buckets.iter_by_bucket() {
            prop_assert!(!seen[u as usize], "node {u} appears twice");
            seen[u as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "some node missing from the CSR");

        // Membership matches the degree formula, and the formula matches
        // the power-of-two band.
        for bucket in 0..buckets.bucket_count() {
            for &u in buckets.bucket(bucket) {
                let d = g.degree(NodeId::new(u as usize));
                prop_assert_eq!(DegreeBuckets::bucket_of_degree(d), bucket);
                match bucket {
                    0 => prop_assert_eq!(d, 0),
                    1 => prop_assert_eq!(d, 1),
                    b => {
                        let lo = 1usize << (b - 2);
                        let hi = 1usize << (b - 1);
                        prop_assert!(lo < d && d <= hi,
                            "degree {d} outside ({lo}, {hi}] for bucket {b}");
                    }
                }
            }
        }
    }

    /// Boundary degrees 0, 1 and Δ: a star plus isolated nodes puts each
    /// where the formula says, for any star size.
    #[test]
    fn degree_bucket_boundaries_on_star_with_isolates(
        leaves in 1usize..40,
        isolates in 0usize..5,
    ) {
        let n = 1 + leaves + isolates;
        let mut b = GraphBuilder::new(n);
        for l in 0..leaves {
            b.add_edge(NodeId::new(0), NodeId::new(1 + l)).unwrap();
        }
        let g = b.finish().unwrap();
        let buckets = DegreeBuckets::new(&g);

        // Hub: degree Δ = leaves.
        let hub_bucket = DegreeBuckets::bucket_of_degree(leaves);
        prop_assert!(buckets.bucket(hub_bucket).contains(&0));
        // Leaves: degree 1 → bucket 1.
        prop_assert_eq!(buckets.bucket(1).len(), leaves + usize::from(leaves == 1));
        // Isolates: degree 0 → bucket 0.
        prop_assert_eq!(buckets.bucket(0).len(), isolates);
        // The engine sweeps cheap buckets first: hub comes last whenever
        // it is strictly the heaviest node.
        if leaves > 1 {
            prop_assert_eq!(buckets.iter_by_bucket().last(), Some(0));
        }
    }
}

// ---------------------------------------------------------------------------
// ProbeSketch: subsampled probes keep one-sided soundness.
// ---------------------------------------------------------------------------

/// Per-trial accept bits for `scheme` over `seeds`, via the batched kernel.
fn trial_verdicts<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seeds: &[u64],
) -> Vec<bool> {
    let prepared = scheme.prepare(config, labeling, seeds.len());
    let mut scratch = RoundScratch::new();
    let mut out = Vec::with_capacity(seeds.len());
    engine::run_trials_batched_with(
        &*prepared,
        config,
        seeds,
        StreamMode::EdgeIndependent,
        &mut scratch,
        &mut |s| out.push(s.accepted),
    );
    out
}

fn flip_label_bit(labeling: &Labeling, node: usize) -> Labeling {
    let mut out = labeling.clone();
    let old = out.get(NodeId::new(node));
    let mid = old.len() / 2;
    let flipped: BitString = old
        .iter()
        .enumerate()
        .map(|(i, b)| if i == mid { !b } else { b })
        .collect();
    out.set(NodeId::new(node), flipped);
    out
}

proptest! {
    /// The soundness oracle. On dense graphs where the sketch genuinely
    /// subsamples (degree > budget), for arbitrary tampered labelings and
    /// seeds: a trial the FULL verifier rejects may still slip past the
    /// sketch, but a trial the SKETCH rejects is always rejected by the
    /// full verifier too — per trial, full acceptance ⟹ sketched
    /// acceptance.
    #[test]
    fn sketched_rejection_implies_full_probe_rejection(
        n in 6usize..18,
        budget in 1usize..4,
        victim in any::<u16>(),
        base_seed in any::<u64>(),
    ) {
        let config = spanning_tree_config(
            &Configuration::plain(generators::complete(n)),
            NodeId::new(0),
        );
        let full = CompiledRpls::new(SpanningTreePls::new()).force_dynamic();
        let sketched = CompiledRpls::new(SpanningTreePls::new())
            .force_dynamic()
            .with_sketch(ProbeSketch::new(budget));
        let honest = Rpls::label(&full, &config);
        let tampered = flip_label_bit(&honest, victim as usize % n);

        let seeds: Vec<u64> = (0..48).map(|i| base_seed.wrapping_add(i)).collect();
        let full_ok = trial_verdicts(&full, &config, &tampered, &seeds);
        let sketch_ok = trial_verdicts(&sketched, &config, &tampered, &seeds);
        for (t, (&f, &s)) in full_ok.iter().zip(&sketch_ok).enumerate() {
            prop_assert!(
                !f || s,
                "trial {t}: full verifier accepted but sketch rejected — \
                 sketch probed a point the full plan did not"
            );
        }
    }

    /// Completeness is untouched by sketching: on honest labelings the
    /// sketched verifier accepts every trial, whatever the budget.
    #[test]
    fn sketch_preserves_completeness_on_honest_labelings(
        n in 6usize..18,
        budget in 1usize..6,
        base_seed in any::<u64>(),
    ) {
        let config = spanning_tree_config(
            &Configuration::plain(generators::complete(n)),
            NodeId::new(0),
        );
        let sketched = CompiledRpls::new(SpanningTreePls::new())
            .force_dynamic()
            .with_sketch(ProbeSketch::new(budget));
        let honest = Rpls::label(&sketched, &config);
        let seeds: Vec<u64> = (0..32).map(|i| base_seed.wrapping_mul(3).wrapping_add(i)).collect();
        prop_assert!(trial_verdicts(&sketched, &config, &honest, &seeds).iter().all(|&a| a));
    }
}

/// The sketch must bite on dense graphs: with a tiny budget on a clique, a
/// tampered labeling still gets caught within a few trials (detection
/// probability ≥ (2/3)·(1 − (1 − 1/d)^s) per trial is far from zero).
#[test]
fn sketch_still_detects_tampering_on_a_clique() {
    let config = spanning_tree_config(
        &Configuration::plain(generators::complete(20)),
        NodeId::new(0),
    );
    let sketched = CompiledRpls::new(SpanningTreePls::new())
        .force_dynamic()
        .with_sketch(ProbeSketch::new(2));
    let honest = Rpls::label(&sketched, &config);
    let tampered = flip_label_bit(&honest, 7);
    let seeds: Vec<u64> = (0..64).collect();
    let verdicts = trial_verdicts(&sketched, &config, &tampered, &seeds);
    assert!(
        verdicts.iter().any(|&a| !a),
        "64 sketched trials never rejected an inconsistent labeling"
    );
}

/// Sanity anchor for the proptest above on one fixed instance: the
/// sketched scheme rejects a strict subset of the trials the full scheme
/// rejects.
#[test]
fn sketched_rejections_are_a_subset_on_fixed_instance() {
    let config = spanning_tree_config(
        &Configuration::plain(generators::complete(12)),
        NodeId::new(0),
    );
    let full = CompiledRpls::new(SpanningTreePls::new()).force_dynamic();
    let sketched = CompiledRpls::new(SpanningTreePls::new())
        .force_dynamic()
        .with_sketch(ProbeSketch::new(1));
    let honest = Rpls::label(&full, &config);
    let tampered = flip_label_bit(&honest, 3);
    let seeds: Vec<u64> = (0..128).collect();
    let full_ok = trial_verdicts(&full, &config, &tampered, &seeds);
    let sketch_ok = trial_verdicts(&sketched, &config, &tampered, &seeds);
    let full_rejects = full_ok.iter().filter(|&&a| !a).count();
    let sketch_rejects = sketch_ok.iter().filter(|&&a| !a).count();
    assert!(sketch_rejects <= full_rejects);
    assert!(
        sketch_rejects > 0,
        "budget-1 sketch caught nothing in 128 trials"
    );
    for (f, s) in full_ok.iter().zip(&sketch_ok) {
        assert!(!*f || *s);
    }
    // Check that a dense node actually exceeded the budget, i.e. the
    // sketch was exercised rather than vacuously equal to the full plan.
    assert!(config.graph().degree(NodeId::new(3)) > 1);
}
