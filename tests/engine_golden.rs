//! Golden seed-stability tests for the refactored round engine.
//!
//! The engine is a deterministic function of `(scheme, configuration,
//! labeling, seed)`. These tests pin that function: a hardcoded digest of a
//! reference transcript guards against accidental stream or layout changes,
//! and the fast (scratch-reusing) path, the record-materialising path, and
//! the parallel trial runner are held vote-for-vote and
//! certificate-for-certificate identical.

use rpls::core::engine::{self, RoundRecord, StreamMode};
#[cfg(feature = "parallel")]
use rpls::core::stats;
use rpls::core::{Configuration, Labeling, Pls, RoundScratch, Rpls};
use rpls::graph::generators;
use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
use rpls_core::CompiledRpls;

/// FNV-1a over a round transcript: votes, then each certificate's length
/// and bytes in global port order.
fn transcript_digest(rec: &RoundRecord) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for &v in rec.outcome.votes() {
        eat(u8::from(v));
    }
    for certs in &rec.certificates {
        for c in certs {
            for &b in (c.len() as u32).to_le_bytes().iter() {
                eat(b);
            }
            for &b in c.as_bytes() {
                eat(b);
            }
        }
    }
    h
}

fn compiled_spanning_tree_workload(
    n: usize,
) -> (CompiledRpls<SpanningTreePls>, Configuration, Labeling) {
    let config = spanning_tree_config(
        &Configuration::plain(generators::cycle(n)),
        rpls::graph::NodeId::new(0),
    );
    let scheme = CompiledRpls::new(SpanningTreePls::new());
    let labeling = Rpls::label(&scheme, &config);
    (scheme, config, labeling)
}

/// The reference transcript digests for fixed seeds. These values pin the
/// engine's random streams and certificate layout; they must only ever
/// change with a deliberate, documented engine-stream revision.
#[test]
fn golden_transcript_digests_are_stable() {
    let (scheme, config, labeling) = compiled_spanning_tree_workload(8);
    let expected: [(u64, u64); 3] = [
        (0x2A, 0x01C3_E378_0062_6F03),
        (0xD5, 0xEA94_7245_2109_C019),
        (0xBEEF, 0x2257_720F_9B49_CE63),
    ];
    for (seed, want) in expected {
        let rec = engine::run_randomized(&scheme, &config, &labeling, seed);
        assert!(
            rec.outcome.accepted(),
            "honest run must accept (seed {seed})"
        );
        assert_eq!(
            transcript_digest(&rec),
            want,
            "transcript digest changed for seed {seed:#x}"
        );
    }
}

/// Re-running the same seed reproduces the transcript exactly; the fast
/// scratch path produces the identical arena.
#[test]
fn fast_path_is_transcript_identical_to_record_path() {
    let (scheme, config, labeling) = compiled_spanning_tree_workload(12);
    let mut scratch = RoundScratch::new();
    for seed in [0u64, 1, 42, 0xFFFF_FFFF] {
        let rec = engine::run_randomized(&scheme, &config, &labeling, seed);
        let rec2 = engine::run_randomized(&scheme, &config, &labeling, seed);
        assert_eq!(rec.certificates, rec2.certificates);
        assert_eq!(rec.outcome.votes(), rec2.outcome.votes());

        let summary = engine::run_randomized_with(
            &scheme,
            &config,
            &labeling,
            seed,
            StreamMode::EdgeIndependent,
            &mut scratch,
        );
        assert_eq!(summary.accepted, rec.outcome.accepted());
        assert_eq!(summary.max_certificate_bits, rec.max_certificate_bits());
        assert_eq!(scratch.votes(), rec.outcome.votes());
        assert_eq!(
            scratch.certificates().to_nested(config.port_base()),
            rec.certificates,
            "certificate-for-certificate identity (seed {seed})"
        );
    }
}

/// Serial and parallel Monte-Carlo runners agree exactly (not just
/// statistically) because they use identical per-trial seeds.
#[cfg(feature = "parallel")]
#[test]
fn serial_and_parallel_estimates_are_identical() {
    let (scheme, config, labeling) = compiled_spanning_tree_workload(16);
    // A tampered labeling so acceptance is non-trivial (strictly between 0
    // and 1) and any trial-partitioning bug would show up in the estimate.
    let mut tampered = labeling.clone();
    let flipped: rpls::bits::BitString = tampered
        .get(rpls::graph::NodeId::new(3))
        .iter()
        .enumerate()
        .map(|(i, b)| if i == 40 { !b } else { b })
        .collect();
    tampered.set(rpls::graph::NodeId::new(3), flipped);

    for (trials, seed) in [(64usize, 7u64), (500, 11), (1000, 0)] {
        let serial = stats::acceptance_probability(&scheme, &config, &tampered, trials, seed);
        for threads in [Some(2), Some(3), Some(8), None] {
            let par = stats::acceptance_probability_par(
                &scheme, &config, &tampered, trials, seed, threads,
            );
            assert!(
                serial == par,
                "trials {trials} seed {seed} threads {threads:?}: serial {serial} != par {par}"
            );
        }
    }
}

/// The deterministic engine still agrees with the randomized compilation on
/// honest inputs (Theorem 3.1 completeness), end to end through the facade.
#[test]
fn compiled_scheme_accepts_honest_labeling_across_seeds() {
    let (scheme, config, labeling) = compiled_spanning_tree_workload(20);
    let inner = SpanningTreePls::new();
    let det = engine::run_deterministic(&inner, &config, &Pls::label(&inner, &config));
    assert!(det.accepted());
    for seed in 0..40u64 {
        assert!(
            engine::run_randomized(&scheme, &config, &labeling, seed)
                .outcome
                .accepted(),
            "seed {seed}"
        );
    }
}
