//! Golden seed-stability tests for the refactored round engine.
//!
//! The engine is a deterministic function of `(scheme, configuration,
//! labeling, seed)`. These tests pin that function: a hardcoded digest of a
//! reference transcript guards against accidental stream or layout changes,
//! and the fast (scratch-reusing) path, the record-materialising path, and
//! the parallel trial runner are held vote-for-vote and
//! certificate-for-certificate identical.

use rpls::core::engine::{self, RoundRecord, StreamMode};
#[cfg(feature = "parallel")]
use rpls::core::stats;
use rpls::core::{Configuration, Labeling, Pls, RoundScratch, Rpls};
use rpls::graph::generators;
use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
use rpls_core::CompiledRpls;

/// FNV-1a over a round transcript: votes, then each certificate's length
/// and bytes in global port order.
fn transcript_digest(rec: &RoundRecord) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for &v in rec.outcome.votes() {
        eat(u8::from(v));
    }
    for certs in &rec.certificates {
        for c in certs {
            for &b in (c.len() as u32).to_le_bytes().iter() {
                eat(b);
            }
            for &b in c.as_bytes() {
                eat(b);
            }
        }
    }
    h
}

fn compiled_spanning_tree_workload(
    n: usize,
) -> (CompiledRpls<SpanningTreePls>, Configuration, Labeling) {
    let config = spanning_tree_config(
        &Configuration::plain(generators::cycle(n)),
        rpls::graph::NodeId::new(0),
    );
    let scheme = CompiledRpls::new(SpanningTreePls::new());
    let labeling = Rpls::label(&scheme, &config);
    (scheme, config, labeling)
}

/// The reference transcript digests for fixed seeds. These values pin the
/// engine's random streams and certificate layout; they must only ever
/// change with a deliberate, documented engine-stream revision.
#[test]
fn golden_transcript_digests_are_stable() {
    let (scheme, config, labeling) = compiled_spanning_tree_workload(8);
    let expected: [(u64, u64); 3] = [
        (0x2A, 0x01C3_E378_0062_6F03),
        (0xD5, 0xEA94_7245_2109_C019),
        (0xBEEF, 0x2257_720F_9B49_CE63),
    ];
    for (seed, want) in expected {
        let rec = engine::run_randomized(&scheme, &config, &labeling, seed);
        assert!(
            rec.outcome.accepted(),
            "honest run must accept (seed {seed})"
        );
        assert_eq!(
            transcript_digest(&rec),
            want,
            "transcript digest changed for seed {seed:#x}"
        );
    }
}

/// Re-running the same seed reproduces the transcript exactly; the fast
/// scratch path produces the identical arena.
#[test]
fn fast_path_is_transcript_identical_to_record_path() {
    let (scheme, config, labeling) = compiled_spanning_tree_workload(12);
    let mut scratch = RoundScratch::new();
    for seed in [0u64, 1, 42, 0xFFFF_FFFF] {
        let rec = engine::run_randomized(&scheme, &config, &labeling, seed);
        let rec2 = engine::run_randomized(&scheme, &config, &labeling, seed);
        assert_eq!(rec.certificates, rec2.certificates);
        assert_eq!(rec.outcome.votes(), rec2.outcome.votes());

        let summary = engine::run_randomized_with(
            &scheme,
            &config,
            &labeling,
            seed,
            StreamMode::EdgeIndependent,
            &mut scratch,
        );
        assert_eq!(summary.accepted, rec.outcome.accepted());
        assert_eq!(summary.max_certificate_bits, rec.max_certificate_bits());
        assert_eq!(scratch.votes(), rec.outcome.votes());
        assert_eq!(
            scratch.certificates().to_nested(config.port_base()),
            rec.certificates,
            "certificate-for-certificate identity (seed {seed})"
        );
    }
}

/// Serial and parallel Monte-Carlo runners agree exactly (not just
/// statistically) because they use identical per-trial seeds.
#[cfg(feature = "parallel")]
#[test]
fn serial_and_parallel_estimates_are_identical() {
    let (scheme, config, labeling) = compiled_spanning_tree_workload(16);
    // A tampered labeling so acceptance is non-trivial (strictly between 0
    // and 1) and any trial-partitioning bug would show up in the estimate.
    let mut tampered = labeling.clone();
    let flipped: rpls::bits::BitString = tampered
        .get(rpls::graph::NodeId::new(3))
        .iter()
        .enumerate()
        .map(|(i, b)| if i == 40 { !b } else { b })
        .collect();
    tampered.set(rpls::graph::NodeId::new(3), flipped);

    for (trials, seed) in [(64usize, 7u64), (500, 11), (1000, 0)] {
        let serial = stats::acceptance_probability(&scheme, &config, &tampered, trials, seed);
        for threads in [Some(2), Some(3), Some(8), None] {
            let par = stats::acceptance_probability_par(
                &scheme, &config, &tampered, trials, seed, threads,
            );
            assert!(
                serial == par,
                "trials {trials} seed {seed} threads {threads:?}: serial {serial} != par {par}"
            );
        }
    }
}

/// The prepared layer ([`Rpls::prepare`]) must be transcript-identical to
/// the unprepared scheme: same certificates, same votes, same randomness
/// consumption — for honest, tampered, and garbage labelings, both stream
/// modes, and both prepared variants (Horner per evaluation at small round
/// hints, full evaluation tables at Monte-Carlo hints).
#[test]
fn prepared_path_is_transcript_identical_to_unprepared() {
    let (scheme, config, honest) = compiled_spanning_tree_workload(10);
    let mut tampered = honest.clone();
    let flipped: rpls::bits::BitString = tampered
        .get(rpls::graph::NodeId::new(2))
        .iter()
        .enumerate()
        .map(|(i, b)| if i == 50 { !b } else { b })
        .collect();
    tampered.set(rpls::graph::NodeId::new(2), flipped);
    let garbage = Labeling::new(
        (0..10)
            .map(|i| rpls::bits::BitString::zeros(i % 4))
            .collect(),
    );

    let mut unprepared_scratch = RoundScratch::new();
    let mut prepared_scratch = RoundScratch::new();
    for labeling in [&honest, &tampered, &garbage] {
        for rounds_hint in [1usize, 1 << 20] {
            let prepared = scheme.prepare(&config, labeling, rounds_hint);
            for seed in [0u64, 9, 77, 12345] {
                for mode in [StreamMode::EdgeIndependent, StreamMode::SharedPerNode] {
                    let a = engine::run_randomized_with(
                        &scheme,
                        &config,
                        labeling,
                        seed,
                        mode,
                        &mut unprepared_scratch,
                    );
                    let b = engine::run_randomized_prepared_with(
                        &*prepared,
                        &config,
                        seed,
                        mode,
                        &mut prepared_scratch,
                    );
                    assert_eq!(a, b, "summary (seed {seed}, hint {rounds_hint})");
                    assert_eq!(
                        unprepared_scratch.votes(),
                        prepared_scratch.votes(),
                        "votes (seed {seed}, hint {rounds_hint})"
                    );
                    assert_eq!(
                        unprepared_scratch
                            .certificates()
                            .to_nested(config.port_base()),
                        prepared_scratch
                            .certificates()
                            .to_nested(config.port_base()),
                        "certificates (seed {seed}, hint {rounds_hint})"
                    );
                }
            }
        }
    }
}

/// Cached preparation ([`Rpls::prepare_cached`] with one [`PrepCache`]
/// reused across honest, tampered, and garbage labelings — then honest
/// again) must be certificate-for-certificate and vote-for-vote identical
/// to fresh preparation. Keying on content and verifying on hit makes
/// cache poisoning impossible by construction; this test is the pin.
#[test]
fn cached_preparation_sweep_is_transcript_identical() {
    use rpls::core::PrepCache;
    let (scheme, config, honest) = compiled_spanning_tree_workload(10);
    let mut tampered = honest.clone();
    let flipped: rpls::bits::BitString = tampered
        .get(rpls::graph::NodeId::new(2))
        .iter()
        .enumerate()
        .map(|(i, b)| if i == 50 { !b } else { b })
        .collect();
    tampered.set(rpls::graph::NodeId::new(2), flipped);
    let garbage = Labeling::new(
        (0..10)
            .map(|i| rpls::bits::BitString::zeros(i % 4))
            .collect(),
    );

    let mut cache = PrepCache::new();
    let mut fresh_scratch = RoundScratch::new();
    let mut cached_scratch = RoundScratch::new();
    for labeling in [&honest, &tampered, &garbage, &honest] {
        for rounds_hint in [1usize, 1 << 20] {
            let fresh = scheme.prepare(&config, labeling, rounds_hint);
            let cached = scheme.prepare_cached(&config, labeling, rounds_hint, &mut cache);
            for seed in [0u64, 9, 77, 12345] {
                for mode in [StreamMode::EdgeIndependent, StreamMode::SharedPerNode] {
                    let a = engine::run_randomized_prepared_with(
                        &*fresh,
                        &config,
                        seed,
                        mode,
                        &mut fresh_scratch,
                    );
                    let b = engine::run_randomized_prepared_with(
                        &*cached,
                        &config,
                        seed,
                        mode,
                        &mut cached_scratch,
                    );
                    assert_eq!(a, b, "summary (seed {seed}, hint {rounds_hint})");
                    assert_eq!(
                        fresh_scratch.votes(),
                        cached_scratch.votes(),
                        "votes (seed {seed}, hint {rounds_hint})"
                    );
                    assert_eq!(
                        fresh_scratch.certificates().to_nested(config.port_base()),
                        cached_scratch.certificates().to_nested(config.port_base()),
                        "certificates (seed {seed}, hint {rounds_hint})"
                    );
                }
            }
        }
    }
    // The sweep revisited every labeling: the cache must have served most
    // of it from shared state while staying within its memory bounds.
    assert!(cache.hits() > cache.misses(), "{cache:?}");
    assert!(cache.retained_key_bits() <= PrepCache::KEY_BITS_BUDGET);
    assert!(cache.table_slots_reserved() <= PrepCache::TABLE_SLOT_BUDGET);
}

/// Same pinning for the κ-bit baseline wrapper, whose preparation caches
/// whole verdicts.
#[test]
fn prepared_exchange_labels_is_transcript_identical_to_unprepared() {
    use rpls::core::scheme::ExchangeLabels;
    let config = spanning_tree_config(
        &Configuration::plain(generators::cycle(9)),
        rpls::graph::NodeId::new(0),
    );
    let scheme = ExchangeLabels::new(SpanningTreePls::new());
    let honest = Rpls::label(&scheme, &config);
    let mut tampered = honest.clone();
    tampered.set(rpls::graph::NodeId::new(4), rpls::bits::BitString::zeros(7));

    let mut unprepared_scratch = RoundScratch::new();
    let mut prepared_scratch = RoundScratch::new();
    for labeling in [&honest, &tampered] {
        let prepared = scheme.prepare(&config, labeling, 100);
        for seed in [0u64, 3, 1 << 40] {
            let a = engine::run_randomized_with(
                &scheme,
                &config,
                labeling,
                seed,
                StreamMode::EdgeIndependent,
                &mut unprepared_scratch,
            );
            let b = engine::run_randomized_prepared_with(
                &*prepared,
                &config,
                seed,
                StreamMode::EdgeIndependent,
                &mut prepared_scratch,
            );
            assert_eq!(a, b);
            assert_eq!(unprepared_scratch.votes(), prepared_scratch.votes());
            assert_eq!(
                unprepared_scratch
                    .certificates()
                    .to_nested(config.port_base()),
                prepared_scratch
                    .certificates()
                    .to_nested(config.port_base()),
            );
        }
    }
}

/// The Monte-Carlo estimators prepare once and reuse across trials; their
/// estimates must equal a manual per-trial loop over the unprepared engine
/// with the same seed derivation, bit for bit.
#[test]
fn prepared_estimates_match_manual_unprepared_loop() {
    use rpls::core::stats;
    let (scheme, config, labeling) = compiled_spanning_tree_workload(12);
    // Corrupt the distance field of one claimed neighbor copy (replicated
    // layout: κ:32, len:32, own:96, len:32, copy₀:96, len:32, copy₁:96;
    // each copy is id:64 then dist:32). The copy on the node's parent port
    // also trips the inner verifier (acceptance 0); the other copy's
    // distance is unconstrained by the inner scheme, so acceptance there
    // equals the fingerprint collision probability 1/p ≈ 1/389 — strictly
    // between 0 and 1 given enough trials. Corrupt each copy in turn so
    // both cases are pinned without depending on the port order.
    let mut fractional_seen = false;
    for dist_bit in [270usize, 400] {
        let mut tampered = labeling.clone();
        let flipped: rpls::bits::BitString = tampered
            .get(rpls::graph::NodeId::new(5))
            .iter()
            .enumerate()
            .map(|(i, b)| if i == dist_bit { !b } else { b })
            .collect();
        tampered.set(rpls::graph::NodeId::new(5), flipped);

        for (trials, seed) in [(64usize, 5u64), (4000, 123)] {
            let mut scratch = RoundScratch::new();
            let accepts = (0..trials)
                .filter(|&t| {
                    engine::run_randomized_with(
                        &scheme,
                        &config,
                        &tampered,
                        stats::trial_seed(seed, t as u64),
                        StreamMode::EdgeIndependent,
                        &mut scratch,
                    )
                    .accepted
                })
                .count();
            let manual = accepts as f64 / trials as f64;
            let estimate = stats::acceptance_probability(&scheme, &config, &tampered, trials, seed);
            assert!(
                manual == estimate,
                "bit {dist_bit} trials {trials} seed {seed}: manual {manual} != prepared \
                 {estimate}"
            );
            assert!(estimate < 1.0, "estimate {estimate}");
            fractional_seen |= trials >= 4000 && estimate > 0.0;
        }
    }
    assert!(
        fractional_seen,
        "one of the corrupted copies must yield a strictly fractional estimate"
    );
}

/// Every scheme in `rpls-schemes`, compiled and run across the three trial
/// paths — unprepared per-round, prepared scalar per-round, and the batched
/// trial engine — must produce identical per-trial summaries and identical
/// acceptance estimates, for honest, tampered, and garbage labelings. This
/// is the contract that lets `stats`/`measure` route everything through
/// `engine::run_trials_batched_with` without estimates ever depending on
/// which path executed.
mod batched_identity {
    use super::*;
    use rpls::core::engine::RoundSummary;
    use rpls::core::stats;
    use rpls::graph::NodeId;

    /// Flips one mid-label bit of node 1 (or the first node with a
    /// non-empty label), producing a tampered-replica labeling.
    fn tamper(labeling: &Labeling) -> Labeling {
        let mut out = labeling.clone();
        for v in 0..out.len() {
            let label = out.get(NodeId::new(v));
            if label.is_empty() {
                continue;
            }
            let target = label.len() / 2;
            let flipped: rpls::bits::BitString = label
                .iter()
                .enumerate()
                .map(|(i, b)| if i == target { !b } else { b })
                .collect();
            out.set(NodeId::new(v), flipped);
            break;
        }
        out
    }

    /// Drives one compiled scheme through the four paths on one labeling
    /// and asserts bit-identity of summaries and estimates. `cache` is the
    /// sweep-wide preparation cache: callers reuse one across labelings
    /// (honest, tampered, garbage — and honest again after garbage), so
    /// this also pins that shared cached state can never poison a later
    /// preparation.
    fn check<S: Pls + Sync>(
        name: &str,
        scheme: &CompiledRpls<S>,
        config: &Configuration,
        labeling: &Labeling,
        cache: &mut rpls::core::PrepCache,
    ) {
        let trials = 120usize;
        let seed = 0xB417u64;
        let seeds: Vec<u64> = (0..trials)
            .map(|t| stats::trial_seed(seed, t as u64))
            .collect();

        // Scalar prepared per-round loop.
        let prepared = scheme.prepare(config, labeling, trials);
        let mut scratch = RoundScratch::new();
        let scalar: Vec<RoundSummary> = seeds
            .iter()
            .map(|&s| {
                engine::run_randomized_prepared_with(
                    &*prepared,
                    config,
                    s,
                    StreamMode::EdgeIndependent,
                    &mut scratch,
                )
            })
            .collect();

        // Batched trial loop on a fresh preparation (the verdict memo of
        // the scalar run must not mask a batched-path divergence).
        let prepared2 = scheme.prepare(config, labeling, trials);
        let mut batched: Vec<RoundSummary> = Vec::new();
        engine::run_trials_batched_with(
            &*prepared2,
            config,
            &seeds,
            StreamMode::EdgeIndependent,
            &mut scratch,
            &mut |s| batched.push(s),
        );
        assert_eq!(scalar, batched, "{name}: batched vs scalar summaries");

        // Cached preparation against the sweep-shared cache: summaries
        // must be identical to the fresh preparation whatever the cache
        // already holds, and the estimator's cached entry point must
        // reproduce the uncached estimate bit for bit.
        let prepared3 = scheme.prepare_cached(config, labeling, trials, cache);
        let mut cached: Vec<RoundSummary> = Vec::new();
        engine::run_trials_batched_with(
            &*prepared3,
            config,
            &seeds,
            StreamMode::EdgeIndependent,
            &mut scratch,
            &mut |s| cached.push(s),
        );
        assert_eq!(scalar, cached, "{name}: cached vs scalar summaries");
        let cached_estimate = stats::acceptance_probability_cached(
            scheme,
            config,
            labeling,
            trials,
            seed,
            &mut scratch,
            cache,
        );

        // Unprepared per-round loop, and the public estimator (which
        // routes through the batched engine).
        let mut unprepared_scratch = RoundScratch::new();
        let manual = seeds
            .iter()
            .filter(|&&s| {
                engine::run_randomized_with(
                    scheme,
                    config,
                    labeling,
                    s,
                    StreamMode::EdgeIndependent,
                    &mut unprepared_scratch,
                )
                .accepted
            })
            .count() as f64
            / trials as f64;
        let estimate = stats::acceptance_probability(scheme, config, labeling, trials, seed);
        assert!(
            manual == estimate,
            "{name}: unprepared {manual} != batched estimate {estimate}"
        );
        assert!(
            cached_estimate == estimate,
            "{name}: cached estimate {cached_estimate} != uncached {estimate}"
        );

        // The shared-stream violation mode falls back to the scalar path;
        // it must stay transcript-identical too.
        let shared_scalar: Vec<RoundSummary> = seeds
            .iter()
            .take(16)
            .map(|&s| {
                engine::run_randomized_prepared_with(
                    &*prepared,
                    config,
                    s,
                    StreamMode::SharedPerNode,
                    &mut scratch,
                )
            })
            .collect();
        let mut shared_batched: Vec<RoundSummary> = Vec::new();
        engine::run_trials_batched_with(
            &*prepared2,
            config,
            &seeds[..16],
            StreamMode::SharedPerNode,
            &mut scratch,
            &mut |s| shared_batched.push(s),
        );
        assert_eq!(shared_scalar, shared_batched, "{name}: shared mode");

        #[cfg(feature = "parallel")]
        {
            let par =
                stats::acceptance_probability_par(scheme, config, labeling, trials, seed, Some(3));
            assert!(
                par == estimate,
                "{name}: parallel {par} != serial {estimate}"
            );
        }
    }

    /// Runs the full honest/tampered/garbage matrix for one scheme, with
    /// one preparation cache shared across the whole sweep — and a second
    /// honest pass after the garbage one, so state the garbage labelings
    /// left in the cache provably cannot poison an honest preparation.
    fn matrix<S: Pls + Clone + Sync>(name: &str, inner: S, config: &Configuration) {
        let scheme = CompiledRpls::new(inner);
        let mut cache = rpls::core::PrepCache::new();
        let honest = Rpls::label(&scheme, config);
        check(name, &scheme, config, &honest, &mut cache);
        check(name, &scheme, config, &tamper(&honest), &mut cache);
        let garbage = Labeling::new(
            (0..config.node_count())
                .map(|i| rpls::bits::BitString::zeros(i % 5))
                .collect(),
        );
        check(name, &scheme, config, &garbage, &mut cache);
        check(name, &scheme, config, &honest, &mut cache);
    }

    #[test]
    fn every_scheme_is_bit_identical_across_paths() {
        use rpls::schemes::*;
        let plain5 = Configuration::plain(generators::cycle(5));
        let path5 = Configuration::plain(generators::path(5));
        let cyc6 = Configuration::plain(generators::cycle(6));

        matrix("acyclicity", acyclicity::AcyclicityPls::new(), &path5);
        matrix(
            "biconnectivity",
            biconnectivity::BiconnectivityPls::new(),
            &plain5,
        );
        matrix(
            "coloring",
            coloring::ColoringPls::new(),
            &coloring::greedy_coloring_config(&plain5),
        );
        matrix(
            "cycle_at_least",
            cycle_at_least::CycleAtLeastPls::new(4),
            &plain5,
        );
        matrix(
            "leader",
            leader::LeaderPls::new(),
            &leader::leader_config(&plain5, NodeId::new(2)),
        );
        matrix(
            "spanning_tree",
            SpanningTreePls::new(),
            &spanning_tree_config(&plain5, NodeId::new(0)),
        );
        matrix(
            "uniformity",
            uniformity::UniformityPls::new(),
            &uniformity::uniform_config(&plain5, &rpls::bits::BitString::zeros(16)),
        );
        matrix(
            "mst",
            mst::MstPls::new(),
            &mst::mst_config(&Configuration::plain(
                generators::cycle(5).with_weights(&[4, 1, 5, 2, 3]),
            )),
        );
        matrix(
            "flow",
            flow::FlowPls::new(flow::FlowPredicate::new(0, 3, 2)),
            &cyc6,
        );
        matrix(
            "vertex_connectivity",
            vertex_connectivity::StConnectivityPls::new(
                vertex_connectivity::StConnectivityPredicate::new(0, 3, 2),
            ),
            &cyc6,
        );
        matrix(
            "cycle_at_most",
            cycle_at_most::cycle_at_most_pls(6),
            &plain5,
        );
        matrix("symmetry", symmetry::symmetry_pls(), &path5);
    }
}

/// The t-round trade-off engine. Two contracts are pinned here: the
/// `t = 1` schedule of **every** scheme is bit-identical to the batched
/// one-round path (summaries and estimates alike, whatever the labeling),
/// and the compiled scheme's chunked-fingerprint schedule agrees
/// trial-for-trial with an independent scalar re-implementation of the
/// slice protocol for `t > 1`.
mod multiround {
    use super::*;
    use rpls::bits::{BitReader, BitString, BitWriter};
    use rpls::core::engine::MultiRoundSummary;
    use rpls::core::stats;
    use rpls::core::{PortRng, Rpls};
    use rpls::fingerprint::{EqMessage, EqProtocol};
    use rpls::graph::NodeId;

    /// One mid-label bit flip (the tampered-replica labeling).
    fn tamper(labeling: &Labeling) -> Labeling {
        let mut out = labeling.clone();
        for v in 0..out.len() {
            let label = out.get(NodeId::new(v));
            if label.is_empty() {
                continue;
            }
            let target = label.len() / 2;
            let flipped: rpls::bits::BitString = label
                .iter()
                .enumerate()
                .map(|(i, b)| if i == target { !b } else { b })
                .collect();
            out.set(NodeId::new(v), flipped);
            break;
        }
        out
    }

    /// Drives one scheme × labeling through the t = 1 schedule on both
    /// paths and both stream modes, asserting bit-identity of summaries
    /// and estimates against the batched one-round engine.
    fn check_t1<S: Rpls + ?Sized>(
        name: &str,
        scheme: &S,
        config: &Configuration,
        labeling: &Labeling,
    ) {
        use rpls::core::engine::RoundSummary;
        let trials = 60usize;
        let seed = 0x7261u64;
        let seeds: Vec<u64> = (0..trials)
            .map(|t| stats::trial_seed(seed, t as u64))
            .collect();
        let mut scratch = RoundScratch::new();
        for mode in [StreamMode::EdgeIndependent, StreamMode::SharedPerNode] {
            let prepared = scheme.prepare(config, labeling, trials);
            let mut one_round: Vec<RoundSummary> = Vec::new();
            engine::run_trials_batched_with(
                &*prepared,
                config,
                &seeds,
                mode,
                &mut scratch,
                &mut |s| one_round.push(s),
            );
            let prepared2 = scheme.prepare(config, labeling, trials);
            let mut multi: Vec<MultiRoundSummary> = Vec::new();
            engine::run_multiround_trials_batched_with(
                &*prepared2,
                config,
                &seeds,
                1,
                mode,
                &mut scratch,
                &mut |s| multi.push(s),
            );
            let expected: Vec<MultiRoundSummary> = one_round
                .iter()
                .map(|&s| MultiRoundSummary {
                    accepted: s.accepted,
                    rounds: 1,
                    decided_round: 1,
                    max_bits_per_round: s.max_certificate_bits,
                    total_bits: s.total_certificate_bits,
                })
                .collect();
            assert_eq!(multi, expected, "{name}: t = 1 summaries ({mode:?})");

            // The scalar multi-round entry point agrees with the batch.
            for (i, &s) in seeds.iter().take(8).enumerate() {
                let scalar = engine::run_multiround_prepared_with(
                    &*prepared2,
                    config,
                    s,
                    1,
                    mode,
                    &mut scratch,
                );
                assert_eq!(scalar, multi[i], "{name}: scalar trial {i} ({mode:?})");
            }
        }

        // Estimates: the t = 1 multi-round estimator equals the one-round
        // estimator bit for bit, cached and uncached alike.
        let one = stats::acceptance_probability(scheme, config, labeling, trials, seed);
        let multi =
            stats::multiround_acceptance_probability(scheme, config, labeling, 1, trials, seed);
        assert!(
            one == multi,
            "{name}: t = 1 estimate {multi} != one-round {one}"
        );
        let mut cache = rpls::core::PrepCache::new();
        let cached = stats::multiround_acceptance_probability_cached(
            scheme,
            config,
            labeling,
            1,
            trials,
            seed,
            &mut scratch,
            &mut cache,
        );
        assert!(
            cached == one,
            "{name}: cached t = 1 estimate {cached} != {one}"
        );
    }

    fn matrix_t1<S: Pls + Clone + Sync>(name: &str, inner: S, config: &Configuration) {
        let scheme = CompiledRpls::new(inner);
        let honest = Rpls::label(&scheme, config);
        check_t1(name, &scheme, config, &honest);
        check_t1(name, &scheme, config, &tamper(&honest));
        let garbage = Labeling::new(
            (0..config.node_count())
                .map(|i| rpls::bits::BitString::zeros(i % 5))
                .collect(),
        );
        check_t1(name, &scheme, config, &garbage);
    }

    /// `t = 1` multi-round summaries and estimates are bit-identical to
    /// the batched one-round path for every scheme in `rpls-schemes` ×
    /// {honest, tampered, garbage} × both stream modes.
    #[test]
    fn every_scheme_t1_is_bit_identical_to_batched_path() {
        use rpls::schemes::*;
        let plain5 = Configuration::plain(generators::cycle(5));
        let path5 = Configuration::plain(generators::path(5));
        let cyc6 = Configuration::plain(generators::cycle(6));

        matrix_t1("acyclicity", acyclicity::AcyclicityPls::new(), &path5);
        matrix_t1(
            "biconnectivity",
            biconnectivity::BiconnectivityPls::new(),
            &plain5,
        );
        matrix_t1(
            "coloring",
            coloring::ColoringPls::new(),
            &coloring::greedy_coloring_config(&plain5),
        );
        matrix_t1(
            "cycle_at_least",
            cycle_at_least::CycleAtLeastPls::new(4),
            &plain5,
        );
        matrix_t1(
            "leader",
            leader::LeaderPls::new(),
            &leader::leader_config(&plain5, NodeId::new(2)),
        );
        matrix_t1(
            "spanning_tree",
            SpanningTreePls::new(),
            &spanning_tree_config(&plain5, NodeId::new(0)),
        );
        matrix_t1(
            "uniformity",
            uniformity::UniformityPls::new(),
            &uniformity::uniform_config(&plain5, &rpls::bits::BitString::zeros(16)),
        );
        matrix_t1(
            "mst",
            mst::MstPls::new(),
            &mst::mst_config(&Configuration::plain(
                generators::cycle(5).with_weights(&[4, 1, 5, 2, 3]),
            )),
        );
        matrix_t1(
            "flow",
            flow::FlowPls::new(flow::FlowPredicate::new(0, 3, 2)),
            &cyc6,
        );
        matrix_t1(
            "vertex_connectivity",
            vertex_connectivity::StConnectivityPls::new(
                vertex_connectivity::StConnectivityPredicate::new(0, 3, 2),
            ),
            &cyc6,
        );
        matrix_t1(
            "cycle_at_most",
            cycle_at_most::cycle_at_most_pls(6),
            &plain5,
        );
        matrix_t1("symmetry", symmetry::symmetry_pls(), &path5);

        // The κ-bit baseline wrapper rides the default splitting schedule.
        let st_config = spanning_tree_config(&plain5, NodeId::new(0));
        let exchange = rpls::core::scheme::ExchangeLabels::new(SpanningTreePls::new());
        let labels = Rpls::label(&exchange, &st_config);
        check_t1("exchange_labels", &exchange, &st_config, &labels);
        check_t1("exchange_labels", &exchange, &st_config, &tamper(&labels));
    }

    // ----- The independent scalar reference of the compiled schedule -----

    /// The replicated-label layout of the Theorem 3.1 compiler, decoded
    /// from scratch (32-bit κ, then per part a 32-bit length and the
    /// bits) — this test owns an independent copy of the format so a
    /// compiler-side drift cannot hide.
    const LEN_BITS: u32 = 32;

    fn decode_replicated(label: &BitString) -> Option<(usize, Vec<BitString>)> {
        let mut r = BitReader::new(label);
        let kappa = r.read_u64(LEN_BITS).ok()? as usize;
        let mut parts = Vec::new();
        while !r.is_exhausted() {
            let len = r.read_u64(LEN_BITS).ok()? as usize;
            if len > kappa {
                return None;
            }
            parts.push(r.read_bits(len).ok()?);
        }
        Some((kappa, parts))
    }

    fn decode_own(label: &BitString) -> Option<(usize, BitString)> {
        let mut r = BitReader::new(label);
        let kappa = r.read_u64(LEN_BITS).ok()? as usize;
        let len = r.read_u64(LEN_BITS).ok()? as usize;
        if len > kappa {
            return None;
        }
        Some((kappa, r.read_bits(len).ok()?))
    }

    fn encode_replicated(kappa: usize, parts: &[&BitString]) -> BitString {
        let mut w = BitWriter::new();
        w.write_u64(kappa as u64, LEN_BITS);
        for part in parts {
            w.write_u64(part.len() as u64, LEN_BITS);
            w.write_bits(part);
        }
        w.finish()
    }

    fn length_prefixed(label: &BitString) -> BitString {
        let mut w = BitWriter::new();
        w.write_u64(label.len() as u64, LEN_BITS);
        w.write_bits(label);
        w.finish()
    }

    fn slice_of(lp: &BitString, r: usize, chunk: usize) -> BitString {
        let start = r * chunk;
        let end = lp.len().min(start + chunk);
        BitString::from_bools((start..end).map(|i| lp.bit(i).expect("in range")))
    }

    /// A from-first-principles scalar execution of the chunked-fingerprint
    /// schedule: real `EqProtocol` messages, real per-round `PortRng`
    /// streams, no plan, no batching. Returns `(accepted, decided_round)`.
    fn reference_multiround(
        scheme: &CompiledRpls<SpanningTreePls>,
        config: &Configuration,
        labeling: &Labeling,
        seed: u64,
        rounds: usize,
        mode: StreamMode,
    ) -> (bool, usize) {
        let g = config.graph();
        let mut decided: Option<usize> = None;
        let note = |round: usize, decided: &mut Option<usize>| {
            *decided = Some(decided.map_or(round, |k| k.min(round)));
        };
        for u in g.nodes() {
            let node_fail: Option<usize> = (|| {
                let Some((kappa_u, parts)) = decode_replicated(labeling.get(u)) else {
                    return Some(1);
                };
                if parts.len() != g.degree(u) + 1 {
                    return Some(1);
                }
                let chunk_u = (LEN_BITS as usize + kappa_u).div_ceil(rounds);
                let proto_u = EqProtocol::for_length(chunk_u);
                let mut first_fail: Option<usize> = None;
                for (i, nb) in g.neighbors(u).enumerate() {
                    let v = nb.node;
                    let sender = decode_own(labeling.get(v)).map(|(kappa_v, own)| {
                        let chunk_v = (LEN_BITS as usize + kappa_v).div_ceil(rounds);
                        (
                            chunk_v,
                            EqProtocol::for_length(chunk_v),
                            length_prefixed(&own),
                        )
                    });
                    let lp_u = length_prefixed(&parts[i + 1]);
                    let covered_u = lp_u.len().div_ceil(chunk_u);
                    let port_fail: Option<usize> = (|| {
                        let Some((chunk_v, proto_v, lp_v)) = sender else {
                            // Empty certificates where round 1 expects a
                            // slice message.
                            return Some(1);
                        };
                        let covered_v = lp_v.len().div_ceil(chunk_v);
                        for r in 0..covered_v.max(covered_u) {
                            let sends = r < covered_v;
                            let expects = r < covered_u;
                            if sends != expects {
                                return Some(r + 1);
                            }
                            if !sends {
                                continue;
                            }
                            let rseed = engine::multiround_seed(seed, r);
                            let msg = {
                                let slice = slice_of(&lp_v, r, chunk_v);
                                match mode {
                                    StreamMode::EdgeIndependent => {
                                        let mut rng = PortRng::for_edge(
                                            rseed,
                                            v.index() as u64,
                                            nb.remote_port.rank() as u64,
                                        );
                                        proto_v.alice_message(&slice, &mut rng)
                                    }
                                    StreamMode::SharedPerNode => {
                                        // The node's single per-round
                                        // stream, consumed one word per
                                        // port in port order.
                                        use rand::Rng;
                                        let mut rng = PortRng::for_node(rseed, v.index() as u64);
                                        for _ in 0..nb.remote_port.rank() {
                                            let _ = rng.next_u64();
                                        }
                                        proto_v.alice_message(&slice, &mut rng)
                                    }
                                }
                            };
                            let packed = msg.to_bits(proto_v.modulus());
                            if packed.len() != proto_u.message_bits() {
                                return Some(r + 1);
                            }
                            let Ok(reparsed) = EqMessage::from_bits(&packed, proto_u.modulus())
                            else {
                                return Some(r + 1);
                            };
                            if !proto_u.bob_accepts(&slice_of(&lp_u, r, chunk_u), &reparsed) {
                                return Some(r + 1);
                            }
                        }
                        None
                    })();
                    if let Some(k) = port_fail {
                        first_fail = Some(first_fail.map_or(k, |f: usize| f.min(k)));
                    }
                }
                if first_fail.is_none() {
                    // All fingerprint rounds passed: the inner verifier
                    // votes after the last round.
                    let det = rpls::core::DetView {
                        local: engine::local_context(config, u),
                        label: &parts[0],
                        neighbor_labels: parts[1..].iter().collect(),
                    };
                    if !scheme.inner().verify(&det) {
                        first_fail = Some(rounds);
                    }
                }
                first_fail
            })();
            if let Some(k) = node_fail {
                note(k, &mut decided);
            }
        }
        match decided {
            Some(k) => (false, k),
            None => (true, rounds),
        }
    }

    /// The compiled chunked-fingerprint schedule agrees trial-for-trial
    /// (verdict **and** decided round) with the independent scalar
    /// reference, for honest, tampered, truncated-replica, κ-mismatched
    /// and garbage labelings, several `t`s, both stream modes.
    #[test]
    fn compiled_schedule_matches_independent_reference() {
        let (scheme, config, honest) = compiled_spanning_tree_workload(8);

        let mut tampered = honest.clone();
        let flipped: BitString = tampered
            .get(NodeId::new(2))
            .iter()
            .enumerate()
            .map(|(i, b)| if i == 50 { !b } else { b })
            .collect();
        tampered.set(NodeId::new(2), flipped);

        // A claimed copy 8 bits shorter than the sender's actual label:
        // lp lengths differ, so slice schedules disagree in content (and,
        // at some t, in coverage).
        let mut truncated = honest.clone();
        let (kappa, mut parts) = decode_replicated(truncated.get(NodeId::new(3))).unwrap();
        let shorter = parts[1].truncated(parts[1].len() - 8);
        parts[1] = shorter;
        let refs: Vec<&BitString> = parts.iter().collect();
        truncated.set(NodeId::new(3), encode_replicated(kappa, &refs));

        // A node declaring a different κ: its slice protocol (and usually
        // its message width) disagrees with its neighbors'.
        let mut mismatched = honest.clone();
        let (kappa, parts) = decode_replicated(mismatched.get(NodeId::new(4))).unwrap();
        let refs: Vec<&BitString> = parts.iter().collect();
        mismatched.set(NodeId::new(4), encode_replicated(kappa * 4, &refs));

        let garbage = Labeling::new((0..8).map(|i| BitString::zeros(i % 4)).collect());

        let mut scratch = RoundScratch::new();
        for labeling in [&honest, &tampered, &truncated, &mismatched, &garbage] {
            let prepared = scheme.prepare(&config, labeling, 16);
            for rounds in [1usize, 2, 3, 5] {
                for mode in [StreamMode::EdgeIndependent, StreamMode::SharedPerNode] {
                    for seed in 0..16u64 {
                        let got = engine::run_multiround_prepared_with(
                            &*prepared,
                            &config,
                            seed,
                            rounds,
                            mode,
                            &mut scratch,
                        );
                        let (accepted, decided) =
                            reference_multiround(&scheme, &config, labeling, seed, rounds, mode);
                        assert_eq!(
                            (got.accepted, got.decided_round),
                            (accepted, decided),
                            "seed {seed}, t {rounds}, {mode:?}"
                        );
                    }
                }
            }
        }
    }
}

/// The deterministic engine still agrees with the randomized compilation on
/// honest inputs (Theorem 3.1 completeness), end to end through the facade.
#[test]
fn compiled_scheme_accepts_honest_labeling_across_seeds() {
    let (scheme, config, labeling) = compiled_spanning_tree_workload(20);
    let inner = SpanningTreePls::new();
    let det = engine::run_deterministic(&inner, &config, &Pls::label(&inner, &config));
    assert!(det.accepted());
    for seed in 0..40u64 {
        assert!(
            engine::run_randomized(&scheme, &config, &labeling, seed)
                .outcome
                .accepted(),
            "seed {seed}"
        );
    }
}
