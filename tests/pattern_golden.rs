//! Golden identity tests for the message-pattern engine axis.
//!
//! [`MessagePattern::PerPort`] is the pre-pattern engine: every patterned
//! entry point run under it must be transcript-identical — vote for vote,
//! certificate for certificate, summary for summary — to the legacy path,
//! across honest/tampered/garbage labelings, both stream modes, and the
//! one-round, multi-round, and faulted engines. The coarser patterns have
//! their own pins: one-round `Broadcast` coincides with the
//! `SharedPerNode` stream mode's first draw (subsumption, not
//! duplication), and `KMessages(k ≥ Δ)` degenerates to per-port exactly.

use rpls::core::engine::{self, MessagePattern, StreamMode};
use rpls::core::scheme::ExchangeLabels;
use rpls::core::{Configuration, FaultPlan, FaultSpec, Labeling, PrepCache, RoundScratch, Rpls};
use rpls::graph::generators;
use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
use rpls_core::CompiledRpls;

const ALL_PATTERNS: [MessagePattern; 5] = [
    MessagePattern::PerPort,
    MessagePattern::Broadcast,
    MessagePattern::Unicast,
    MessagePattern::KMessages(1),
    MessagePattern::KMessages(2),
];

fn spanning_tree_workload(n: usize) -> (Configuration, Labeling, Labeling, Labeling) {
    let config = spanning_tree_config(
        &Configuration::plain(generators::cycle(n)),
        rpls::graph::NodeId::new(0),
    );
    let scheme = CompiledRpls::new(SpanningTreePls::new());
    let honest = Rpls::label(&scheme, &config);
    let mut tampered = honest.clone();
    let flipped: rpls::bits::BitString = tampered
        .get(rpls::graph::NodeId::new(2))
        .iter()
        .enumerate()
        .map(|(i, b)| if i == 50 { !b } else { b })
        .collect();
    tampered.set(rpls::graph::NodeId::new(2), flipped);
    let garbage = Labeling::new(
        (0..n)
            .map(|i| rpls::bits::BitString::zeros(i % 4))
            .collect(),
    );
    (config, honest, tampered, garbage)
}

/// `PerPort` through every patterned entry point is bit-identical to the
/// legacy engine: one-round scalar, one-round batched, multiround, and
/// faulted — across labelings, stream modes, and both the compiled and
/// exchange-labels schemes.
#[test]
fn per_port_is_transcript_identical_to_legacy() {
    let (config, honest, tampered, garbage) = spanning_tree_workload(10);
    let compiled = CompiledRpls::new(SpanningTreePls::new());
    let exchange = ExchangeLabels::new(SpanningTreePls::new());
    let plan = FaultPlan::new(FaultSpec::transparent().with_drop(0.2), 99);

    let mut legacy_scratch = RoundScratch::new();
    let mut patterned_scratch = RoundScratch::new();
    let seeds = [0u64, 9, 77, 12345];
    for labeling in [&honest, &tampered, &garbage] {
        for mode in [StreamMode::EdgeIndependent, StreamMode::SharedPerNode] {
            for seed in seeds {
                macro_rules! check_scheme {
                    ($scheme:expr) => {
                        // One-round scalar.
                        let a = engine::run_randomized_with(
                            $scheme,
                            &config,
                            labeling,
                            seed,
                            mode,
                            &mut legacy_scratch,
                        );
                        let b = engine::run_randomized_patterned_with(
                            $scheme,
                            &config,
                            labeling,
                            seed,
                            MessagePattern::PerPort,
                            mode,
                            &mut patterned_scratch,
                        );
                        assert_eq!(a, b, "one-round summary (seed {seed}, mode {mode:?})");
                        assert_eq!(legacy_scratch.votes(), patterned_scratch.votes());
                        assert_eq!(
                            legacy_scratch.certificates().to_nested(config.port_base()),
                            patterned_scratch
                                .certificates()
                                .to_nested(config.port_base()),
                            "certificates (seed {seed}, mode {mode:?})"
                        );
                        let prepared = $scheme.prepare(&config, labeling, seeds.len());
                        // Batched trials.
                        let mut legacy = Vec::new();
                        engine::run_trials_batched_with(
                            &*prepared,
                            &config,
                            &seeds,
                            mode,
                            &mut legacy_scratch,
                            &mut |s| legacy.push(s),
                        );
                        let mut patterned = Vec::new();
                        engine::run_trials_batched_patterned_with(
                            &*prepared,
                            &config,
                            &seeds,
                            MessagePattern::PerPort,
                            mode,
                            &mut patterned_scratch,
                            &mut |s| patterned.push(s),
                        );
                        assert_eq!(legacy, patterned, "batched trials (mode {mode:?})");
                        // Multiround.
                        for rounds in [1usize, 3] {
                            let a = engine::run_multiround_prepared_with(
                                &*prepared,
                                &config,
                                seed,
                                rounds,
                                mode,
                                &mut legacy_scratch,
                            );
                            let b = engine::run_multiround_prepared_patterned_with(
                                &*prepared,
                                &config,
                                seed,
                                rounds,
                                MessagePattern::PerPort,
                                mode,
                                &mut patterned_scratch,
                            );
                            assert_eq!(a, b, "t={rounds} (seed {seed}, mode {mode:?})");
                        }
                        // Faulted (scalar + batched).
                        let a = engine::run_randomized_prepared_faulted_with(
                            &*prepared,
                            &config,
                            seed,
                            &plan,
                            mode,
                            &mut legacy_scratch,
                        );
                        let b = engine::run_randomized_prepared_faulted_patterned_with(
                            &*prepared,
                            &config,
                            seed,
                            MessagePattern::PerPort,
                            &plan,
                            mode,
                            &mut patterned_scratch,
                        );
                        assert_eq!(a, b, "faulted (seed {seed}, mode {mode:?})");
                        let mut legacy = Vec::new();
                        engine::run_trials_faulted_with(
                            &*prepared,
                            &config,
                            &seeds,
                            &plan,
                            mode,
                            &mut legacy_scratch,
                            &mut |s| legacy.push(s),
                        );
                        let mut patterned = Vec::new();
                        engine::run_trials_faulted_patterned_with(
                            &*prepared,
                            &config,
                            &seeds,
                            MessagePattern::PerPort,
                            &plan,
                            mode,
                            &mut patterned_scratch,
                            &mut |s| patterned.push(s),
                        );
                        assert_eq!(legacy, patterned, "faulted batch (mode {mode:?})");
                        let a = engine::run_multiround_faulted_with(
                            $scheme,
                            &config,
                            labeling,
                            seed,
                            3,
                            &plan,
                            mode,
                            &mut legacy_scratch,
                        );
                        let b = engine::run_multiround_faulted_patterned_with(
                            $scheme,
                            &config,
                            labeling,
                            seed,
                            3,
                            MessagePattern::PerPort,
                            &plan,
                            mode,
                            &mut patterned_scratch,
                        );
                        assert_eq!(a, b, "faulted multiround (seed {seed}, mode {mode:?})");
                    };
                }
                check_scheme!(&compiled);
                check_scheme!(&exchange);
            }
        }
    }
}

/// One-round `Broadcast` is the `SharedPerNode` stream mode's first draw,
/// shared across the node's ports: every port of the broadcast transcript
/// carries exactly the certificate `SharedPerNode` puts on port 0, for
/// both the compiled and exchange-labels schemes — subsumption, not a
/// parallel implementation.
#[test]
fn one_round_broadcast_coincides_with_shared_per_node() {
    let (config, honest, tampered, _) = spanning_tree_workload(8);
    let compiled = CompiledRpls::new(SpanningTreePls::new());
    let exchange = ExchangeLabels::new(SpanningTreePls::new());
    let mut shared_scratch = RoundScratch::new();
    let mut broadcast_scratch = RoundScratch::new();
    for labeling in [&honest, &tampered] {
        for seed in [0u64, 5, 1234] {
            macro_rules! check_scheme {
                ($scheme:expr, $name:expr) => {
                    engine::run_randomized_with(
                        $scheme,
                        &config,
                        labeling,
                        seed,
                        StreamMode::SharedPerNode,
                        &mut shared_scratch,
                    );
                    engine::run_randomized_patterned_with(
                        $scheme,
                        &config,
                        labeling,
                        seed,
                        MessagePattern::Broadcast,
                        StreamMode::EdgeIndependent,
                        &mut broadcast_scratch,
                    );
                    let shared = shared_scratch.certificates().to_nested(config.port_base());
                    let broadcast = broadcast_scratch
                        .certificates()
                        .to_nested(config.port_base());
                    for (v, (s, b)) in shared.iter().zip(broadcast.iter()).enumerate() {
                        for (p, cert) in b.iter().enumerate() {
                            assert_eq!(
                                cert, &s[0],
                                "{}: node {v} port {p} (seed {seed}): broadcast must \
                                 replicate SharedPerNode's first draw",
                                $name
                            );
                        }
                    }
                };
            }
            check_scheme!(&compiled, "compiled");
            check_scheme!(&exchange, "exchange");
        }
    }
    // For exchange-labels the certificate is the label on every port, so
    // the *whole* transcript (certificates and votes) coincides.
    for seed in [0u64, 5] {
        let a = engine::run_randomized_with(
            &exchange,
            &config,
            &honest,
            seed,
            StreamMode::SharedPerNode,
            &mut shared_scratch,
        );
        let b = engine::run_randomized_patterned_with(
            &exchange,
            &config,
            &honest,
            seed,
            MessagePattern::Broadcast,
            StreamMode::EdgeIndependent,
            &mut broadcast_scratch,
        );
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(shared_scratch.votes(), broadcast_scratch.votes());
        assert_eq!(
            shared_scratch.certificates().to_nested(config.port_base()),
            broadcast_scratch
                .certificates()
                .to_nested(config.port_base()),
        );
    }
}

/// `KMessages(k ≥ Δ)` assigns every port its own slot, so under the
/// edge-independent stream it is bit-identical to `PerPort`; `Unicast`
/// shares `PerPort`'s transcript by construction (only the bit accounting
/// differs, and only for schemes that know their wire cost).
#[test]
fn saturated_k_and_unicast_share_per_port_transcripts() {
    let (config, honest, tampered, garbage) = spanning_tree_workload(9);
    let compiled = CompiledRpls::new(SpanningTreePls::new());
    let mut a_scratch = RoundScratch::new();
    let mut b_scratch = RoundScratch::new();
    for labeling in [&honest, &tampered, &garbage] {
        for seed in [0u64, 7, 321] {
            let a = engine::run_randomized_patterned_with(
                &compiled,
                &config,
                labeling,
                seed,
                MessagePattern::PerPort,
                StreamMode::EdgeIndependent,
                &mut a_scratch,
            );
            // Cycle degree is 2: k = 2 saturates, as does any larger k.
            for k in [2usize, 3, 64] {
                let b = engine::run_randomized_patterned_with(
                    &compiled,
                    &config,
                    labeling,
                    seed,
                    MessagePattern::KMessages(k),
                    StreamMode::EdgeIndependent,
                    &mut b_scratch,
                );
                assert_eq!(a, b, "k={k} (seed {seed})");
                assert_eq!(a_scratch.votes(), b_scratch.votes());
                assert_eq!(
                    a_scratch.certificates().to_nested(config.port_base()),
                    b_scratch.certificates().to_nested(config.port_base()),
                );
            }
            // Unicast accounting needs the prepared scheme (only the
            // labeling-static plans know the wire cost): same transcript,
            // half the (x, P(x)) width — the sender ships P(x) only.
            let prepared = compiled.prepare(&config, labeling, 1);
            let u = engine::run_randomized_prepared_patterned_with(
                &*prepared,
                &config,
                seed,
                MessagePattern::Unicast,
                StreamMode::EdgeIndependent,
                &mut b_scratch,
            );
            assert_eq!(a.accepted, u.accepted, "unicast verdict (seed {seed})");
            assert_eq!(a_scratch.votes(), b_scratch.votes());
            assert_eq!(
                a_scratch.certificates().to_nested(config.port_base()),
                b_scratch.certificates().to_nested(config.port_base()),
                "unicast transcript (seed {seed})"
            );
            assert_eq!(u.max_certificate_bits, a.max_certificate_bits / 2);
            assert_eq!(u.total_certificate_bits, a.total_certificate_bits / 2);
        }
    }
}

/// The compiled batched pattern kernels agree with the patterned scalar
/// reference path, trial for trial, for every pattern (the batched
/// `Broadcast`/`KMessages` probes re-key the stream by slot; this pins
/// that re-keying against the scalar certificate generator).
#[test]
fn batched_pattern_kernels_match_scalar_reference() {
    let (config, honest, tampered, garbage) = spanning_tree_workload(11);
    let compiled = CompiledRpls::new(SpanningTreePls::new());
    let seeds = [0u64, 9, 77, 12345, 54321];
    let mut scalar_scratch = RoundScratch::new();
    let mut batched_scratch = RoundScratch::new();
    for labeling in [&honest, &tampered, &garbage] {
        let prepared = compiled.prepare(&config, labeling, seeds.len());
        for pattern in ALL_PATTERNS {
            let scalar: Vec<_> = seeds
                .iter()
                .map(|&seed| {
                    engine::run_randomized_prepared_patterned_with(
                        &*prepared,
                        &config,
                        seed,
                        pattern,
                        StreamMode::EdgeIndependent,
                        &mut scalar_scratch,
                    )
                })
                .collect();
            let mut batched = Vec::new();
            engine::run_trials_batched_patterned_with(
                &*prepared,
                &config,
                &seeds,
                pattern,
                StreamMode::EdgeIndependent,
                &mut batched_scratch,
                &mut |s| batched.push(s),
            );
            assert_eq!(scalar, batched, "pattern {pattern:?}");
            // Multiround kernels against the prepared scalar schedule.
            for rounds in [1usize, 4] {
                let scalar: Vec<_> = seeds
                    .iter()
                    .map(|&seed| {
                        engine::run_multiround_prepared_patterned_with(
                            &*prepared,
                            &config,
                            seed,
                            rounds,
                            pattern,
                            StreamMode::EdgeIndependent,
                            &mut scalar_scratch,
                        )
                    })
                    .collect();
                let mut batched = Vec::new();
                engine::run_multiround_trials_batched_patterned_with(
                    &*prepared,
                    &config,
                    &seeds,
                    rounds,
                    pattern,
                    StreamMode::EdgeIndependent,
                    &mut batched_scratch,
                    &mut |s| batched.push(s),
                );
                assert_eq!(scalar, batched, "pattern {pattern:?} t={rounds}");
            }
        }
    }
}

/// Completeness survives every pattern: an honest labeling accepts with
/// probability 1 under the whole spectrum (the schemes are one-sided, and
/// sharing a correct fingerprint across ports cannot create a rejection).
#[test]
fn honest_labelings_accept_under_every_pattern() {
    let (config, honest, _, _) = spanning_tree_workload(12);
    let compiled = CompiledRpls::new(SpanningTreePls::new());
    let exchange = ExchangeLabels::new(SpanningTreePls::new());
    // Each scheme's own honest labels (the compiled label carries a κ
    // prefix the exchange baseline doesn't use).
    let exchange_honest = Rpls::label(&exchange, &config);
    for pattern in ALL_PATTERNS {
        let p = rpls::core::stats::acceptance_probability_patterned(
            &compiled, &config, &honest, 60, 3, pattern,
        );
        assert_eq!(p, 1.0, "compiled under {pattern:?}");
        let p = rpls::core::stats::acceptance_probability_patterned(
            &exchange,
            &config,
            &exchange_honest,
            20,
            3,
            pattern,
        );
        assert_eq!(p, 1.0, "exchange under {pattern:?}");
    }
}

/// The patterned estimators share the per-port estimators' per-trial
/// seeds: `PerPort` reproduces `acceptance_probability` (and its
/// multiround twin) bit-for-bit, cached or not.
#[test]
fn per_port_estimators_match_legacy_estimators() {
    let (config, _, tampered, _) = spanning_tree_workload(10);
    let compiled = CompiledRpls::new(SpanningTreePls::new());
    for (trials, seed) in [(64usize, 7u64), (300, 11)] {
        let legacy =
            rpls::core::stats::acceptance_probability(&compiled, &config, &tampered, trials, seed);
        let patterned = rpls::core::stats::acceptance_probability_patterned(
            &compiled,
            &config,
            &tampered,
            trials,
            seed,
            MessagePattern::PerPort,
        );
        assert!(legacy == patterned, "{legacy} vs {patterned}");
        let cached = rpls::core::stats::acceptance_probability_patterned_cached(
            &compiled,
            &config,
            &tampered,
            trials,
            seed,
            MessagePattern::PerPort,
            &mut RoundScratch::new(),
            &mut PrepCache::new(),
        );
        assert!(legacy == cached, "{legacy} vs cached {cached}");
        for rounds in [1usize, 4] {
            let legacy = rpls::core::stats::multiround_acceptance_probability(
                &compiled, &config, &tampered, rounds, trials, seed,
            );
            let patterned = rpls::core::stats::multiround_acceptance_probability_patterned(
                &compiled,
                &config,
                &tampered,
                rounds,
                trials,
                seed,
                MessagePattern::PerPort,
            );
            assert!(legacy == patterned, "t={rounds}: {legacy} vs {patterned}");
        }
    }
}

/// Serial and parallel estimates stay bit-identical now that the serial
/// path funnels through the patterned kernels — on shard counts ≥ 2, with
/// non-trivial acceptance (the satellite pin for the `parallel` CI job).
#[cfg(feature = "parallel")]
#[test]
fn parallel_shards_stay_bit_identical_after_pattern_refactor() {
    let (config, _, tampered, _) = spanning_tree_workload(14);
    let compiled = CompiledRpls::new(SpanningTreePls::new());
    for (trials, seed) in [(128usize, 3u64), (500, 21)] {
        let serial =
            rpls::core::stats::acceptance_probability(&compiled, &config, &tampered, trials, seed);
        for threads in [Some(2), Some(4), Some(7)] {
            let par = rpls::core::stats::acceptance_probability_par(
                &compiled, &config, &tampered, trials, seed, threads,
            );
            assert!(
                serial == par,
                "trials {trials} seed {seed} threads {threads:?}: {serial} vs {par}"
            );
        }
    }
}
